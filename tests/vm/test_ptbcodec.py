"""Tests for the compressed-PTB encoding and embedded CTE slots."""

import pytest
from hypothesis import given, strategies as st

from repro.common.units import TIB
from repro.vm.pte import STATUS_DEFAULT_DATA, make_pte, pte_ppn
from repro.vm.ptbcodec import PTBCodec


def uniform_ptb(base_ppn=0x1000, status=STATUS_DEFAULT_DATA):
    return [make_pte(base_ppn + i, status) for i in range(8)]


def test_capacity_matches_section_va5():
    """1 TB -> 8 CTEs, 4 TB -> 7, 16 TB -> 6 (paper's exact numbers)."""
    assert PTBCodec(dram_bytes=1 * TIB).embeddable_ctes == 8
    assert PTBCodec(dram_bytes=4 * TIB).embeddable_ctes == 7
    assert PTBCodec(dram_bytes=16 * TIB).embeddable_ctes == 6


def test_cte_bits_formula():
    codec = PTBCodec(dram_bytes=1 * TIB)
    assert codec.cte_bits == 28  # log2(1 TB / 4 KB)
    assert codec.ppn_bits == 30  # 4x expansion


def test_compress_roundtrip():
    codec = PTBCodec()
    ptes = uniform_ptb()
    compressed = codec.compress(ptes)
    assert compressed is not None
    assert codec.decompress(compressed) == ptes


def test_divergent_status_bits_block_compression():
    codec = PTBCodec()
    ptes = uniform_ptb()
    ptes[3] = make_pte(pte_ppn(ptes[3]), STATUS_DEFAULT_DATA | (1 << 6))  # dirty
    assert codec.compress(ptes) is None
    assert not codec.compressible(ptes)


def test_divergent_high_ppn_bits_block_compression():
    codec = PTBCodec(dram_bytes=1 * TIB)
    ptes = uniform_ptb()
    ptes[0] = make_pte((1 << 31) | 5, STATUS_DEFAULT_DATA)  # above the 30-bit space
    assert codec.compress(ptes) is None


def test_compressible_validates_length():
    with pytest.raises(ValueError):
        PTBCodec().compressible([0] * 4)


def test_embedded_cte_lookup_and_install():
    codec = PTBCodec()
    ptes = uniform_ptb(base_ppn=0x2000)
    compressed = codec.compress(ptes)
    ppn = 0x2003
    assert compressed.embedded_cte_for_ppn(ppn, codec.ppn_bits) is None
    assert compressed.set_cte_for_ppn(ppn, codec.ppn_bits, cte=0xBEEF)
    assert compressed.embedded_cte_for_ppn(ppn, codec.ppn_bits) == 0xBEEF
    # A PPN not in this PTB has no slot.
    assert not compressed.set_cte_for_ppn(0x9999, codec.ppn_bits, cte=1)
    assert compressed.embedded_cte_for_ppn(0x9999, codec.ppn_bits) is None


def test_cte_capacity_limits_slots():
    codec = PTBCodec(dram_bytes=16 * TIB)  # only 6 slots
    ptes = uniform_ptb(base_ppn=0x3000)
    compressed = codec.compress(ptes)
    assert compressed.cte_capacity == 6
    # Slots 0..5 accept CTEs; slots 6,7 refuse.
    for i in range(8):
        ok = compressed.set_cte_for_ppn(0x3000 + i, codec.ppn_bits, cte=i)
        assert ok == (i < 6)


def test_software_update_preserves_matching_ctes():
    codec = PTBCodec()
    ptes = uniform_ptb(base_ppn=0x4000)
    compressed = codec.compress(ptes)
    compressed.set_cte_for_ppn(0x4001, codec.ppn_bits, cte=0x11)
    compressed.set_cte_for_ppn(0x4002, codec.ppn_bits, cte=0x22)
    # OS remaps entry 2 to a new frame; entry 1 unchanged.
    new_ptes = list(ptes)
    new_ptes[2] = make_pte(0x5555, STATUS_DEFAULT_DATA)
    merged = codec.merge_software_update(compressed, new_ptes)
    assert merged is not None
    assert merged.embedded_cte_for_ppn(0x4001, codec.ppn_bits) == 0x11
    assert merged.embedded_cte_for_ppn(0x5555, codec.ppn_bits) is None


def test_software_update_to_incompressible_returns_none():
    codec = PTBCodec()
    compressed = codec.compress(uniform_ptb())
    new_ptes = uniform_ptb()
    new_ptes[0] = make_pte(1, STATUS_DEFAULT_DATA | (1 << 8))
    assert codec.merge_software_update(compressed, new_ptes) is None


def test_codec_validates_config():
    with pytest.raises(ValueError):
        PTBCodec(dram_bytes=1024)
    with pytest.raises(ValueError):
        PTBCodec(expansion_factor=0)


@given(st.integers(min_value=0, max_value=(1 << 28) - 9),
       st.integers(min_value=0, max_value=(1 << 12) - 1))
def test_roundtrip_property(base_ppn, status_low):
    codec = PTBCodec()
    ptes = [make_pte(base_ppn + i, status_low) for i in range(8)]
    compressed = codec.compress(ptes)
    assert compressed is not None
    assert codec.decompress(compressed) == ptes
