"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_workloads_lists_all(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    for name in ("pageRank", "mcf", "omnetpp", "canneal", "triCount"):
        assert name in out


def test_deflate_command(capsys):
    assert main(["deflate", "graph", "--pages", "3"]) == 0
    out = capsys.readouterr().out
    assert "round-trip OK" in out
    assert "our ASIC Deflate" in out


def test_deflate_rejects_unknown_profile(capsys):
    assert main(["deflate", "nonsense"]) == 2
    assert "unknown profile" in capsys.readouterr().err


def test_compare_command_small(capsys):
    assert main(["compare", "omnetpp", "--accesses", "6000",
                 "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "TMCC speedup" in out
    assert "Compresso" in out


def test_sweep_command_small(capsys):
    assert main(["sweep", "omnetpp", "--accesses", "6000",
                 "--scale", "0.05", "--points", "2"]) == 0
    out = capsys.readouterr().out
    assert "perf vs Compresso" in out


def test_parser_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["compare", "doom3"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_trace_export_and_run(tmp_path, capsys):
    path = str(tmp_path / "omnetpp.rtrc")
    assert main(["trace", "export", "omnetpp", path,
                 "--accesses", "4000", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "wrote" in out and "accesses" in out
    assert main(["trace", "run", path, "--controller", "compresso"]) == 0
    out = capsys.readouterr().out
    assert "LLC misses" in out


def test_trace_run_rejects_unknown_controller(tmp_path, capsys):
    path = str(tmp_path / "t.rtrc")
    main(["trace", "export", "omnetpp", path,
          "--accesses", "2000", "--scale", "0.05"])
    capsys.readouterr()
    assert main(["trace", "run", path, "--controller", "hal9000"]) == 2
    assert "unknown controller" in capsys.readouterr().err
