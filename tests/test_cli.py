"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_workloads_lists_all(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    for name in ("pageRank", "mcf", "omnetpp", "canneal", "triCount"):
        assert name in out


def test_workloads_json(capsys):
    assert main(["workloads", "--json"]) == 0
    records = json.loads(capsys.readouterr().out)
    assert {r["name"] for r in records} >= {"mcf", "omnetpp", "canneal"}
    assert all("kind" in r for r in records)


def test_run_controller_list(capsys):
    assert main(["run", "--controller", "list"]) == 0
    names = capsys.readouterr().out.split()
    assert "tmcc" in names and "compresso" in names
    assert "uncompressed" in names and "osinspired" in names
    from repro.core import available_controllers

    assert names == available_controllers()


def test_run_requires_workload(capsys):
    assert main(["run", "--controller", "tmcc"]) == 2
    assert "workload is required" in capsys.readouterr().err


def test_run_rejects_unknown_controller(capsys):
    assert main(["run", "omnetpp", "--controller", "hal9000"]) == 2
    assert "unknown controller" in capsys.readouterr().err


def test_run_rejects_unknown_workload(capsys):
    assert main(["run", "doom3"]) == 2
    assert "unknown workload" in capsys.readouterr().err


def test_run_emit_json_and_trace_events(tmp_path, capsys):
    events = tmp_path / "events.jsonl"
    assert main(["run", "omnetpp", "--accesses", "4000", "--scale", "0.05",
                 "--controller", "compresso", "--emit-json",
                 "--trace-events", str(events)]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["accesses"] > 0
    assert "tlb.hit_rate" in record["metrics"]
    assert "hit_rate" in record["metrics_tree"]["tlb"]
    lines = [json.loads(line) for line in events.read_text().splitlines()]
    assert lines, "expected at least one trace event"
    assert all("kind" in e and "time_ns" in e for e in lines)
    kinds = {e["kind"] for e in lines}
    assert "controller.access_path" in kinds or "sim.tlb_miss" in kinds


def test_compare_emit_json(capsys):
    assert main(["compare", "omnetpp", "--accesses", "6000",
                 "--scale", "0.05", "--emit-json"]) == 0
    record = json.loads(capsys.readouterr().out)
    assert set(record["systems"]) == {"uncompressed", "compresso", "tmcc"}
    tmcc = record["systems"]["tmcc"]
    assert "controller" in tmcc["metrics_tree"]
    assert "paths" in tmcc["metrics_tree"]["controller"]


def test_deflate_command(capsys):
    assert main(["deflate", "graph", "--pages", "3"]) == 0
    out = capsys.readouterr().out
    assert "round-trip OK" in out
    assert "our ASIC Deflate" in out


def test_deflate_rejects_unknown_profile(capsys):
    assert main(["deflate", "nonsense"]) == 2
    assert "unknown profile" in capsys.readouterr().err


def test_compare_command_small(capsys):
    assert main(["compare", "omnetpp", "--accesses", "6000",
                 "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "TMCC speedup" in out
    assert "Compresso" in out


def test_sweep_command_small(capsys):
    assert main(["sweep", "omnetpp", "--accesses", "6000",
                 "--scale", "0.05", "--points", "2"]) == 0
    out = capsys.readouterr().out
    assert "perf vs Compresso" in out


def test_parser_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["compare", "doom3"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_trace_export_and_run(tmp_path, capsys):
    path = str(tmp_path / "omnetpp.rtrc")
    assert main(["trace", "export", "omnetpp", path,
                 "--accesses", "4000", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "wrote" in out and "accesses" in out
    assert main(["trace", "run", path, "--controller", "compresso"]) == 0
    out = capsys.readouterr().out
    assert "LLC misses" in out


def test_trace_run_rejects_unknown_controller(tmp_path, capsys):
    path = str(tmp_path / "t.rtrc")
    main(["trace", "export", "omnetpp", path,
          "--accesses", "2000", "--scale", "0.05"])
    capsys.readouterr()
    assert main(["trace", "run", path, "--controller", "hal9000"]) == 2
    assert "unknown controller" in capsys.readouterr().err


def test_trace_run_controller_list(capsys):
    assert main(["trace", "run", "--controller", "list"]) == 0
    names = capsys.readouterr().out.split()
    assert "tmcc" in names


def test_trace_run_requires_path(capsys):
    assert main(["trace", "run", "--controller", "tmcc"]) == 2
    assert "trace path is required" in capsys.readouterr().err
