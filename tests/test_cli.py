"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_workloads_lists_all(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    for name in ("pageRank", "mcf", "omnetpp", "canneal", "triCount"):
        assert name in out


def test_workloads_json(capsys):
    assert main(["workloads", "--json"]) == 0
    records = json.loads(capsys.readouterr().out)
    assert {r["name"] for r in records} >= {"mcf", "omnetpp", "canneal"}
    assert all("kind" in r for r in records)


def test_run_controller_list(capsys):
    assert main(["run", "--controller", "list"]) == 0
    names = capsys.readouterr().out.split()
    assert "tmcc" in names and "compresso" in names
    assert "uncompressed" in names and "osinspired" in names
    from repro.core import available_controllers

    assert names == available_controllers()


def test_run_requires_workload(capsys):
    assert main(["run", "--controller", "tmcc"]) == 2
    assert "workload is required" in capsys.readouterr().err


def test_run_rejects_unknown_controller(capsys):
    assert main(["run", "omnetpp", "--controller", "hal9000"]) == 2
    assert "unknown controller" in capsys.readouterr().err


def test_run_rejects_unknown_workload(capsys):
    assert main(["run", "doom3"]) == 2
    assert "unknown workload" in capsys.readouterr().err


def test_run_emit_json_and_trace_events(tmp_path, capsys):
    events = tmp_path / "events.jsonl"
    assert main(["run", "omnetpp", "--accesses", "4000", "--scale", "0.05",
                 "--controller", "compresso", "--emit-json",
                 "--trace-events", str(events)]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["accesses"] > 0
    assert "tlb.hit_rate" in record["metrics"]
    assert "hit_rate" in record["metrics_tree"]["tlb"]
    lines = [json.loads(line) for line in events.read_text().splitlines()]
    assert lines, "expected at least one trace event"
    assert all("kind" in e and "time_ns" in e for e in lines)
    kinds = {e["kind"] for e in lines}
    assert "controller.access_path" in kinds or "sim.tlb_miss" in kinds


def test_compare_emit_json(capsys):
    assert main(["compare", "omnetpp", "--accesses", "6000",
                 "--scale", "0.05", "--emit-json"]) == 0
    record = json.loads(capsys.readouterr().out)
    assert set(record["systems"]) == {"uncompressed", "compresso", "tmcc"}
    tmcc = record["systems"]["tmcc"]
    assert "controller" in tmcc["metrics_tree"]
    assert "paths" in tmcc["metrics_tree"]["controller"]


def test_deflate_command(capsys):
    assert main(["deflate", "graph", "--pages", "3"]) == 0
    out = capsys.readouterr().out
    assert "round-trip OK" in out
    assert "our ASIC Deflate" in out


def test_deflate_rejects_unknown_profile(capsys):
    assert main(["deflate", "nonsense"]) == 2
    assert "unknown profile" in capsys.readouterr().err


def test_compare_command_small(capsys):
    assert main(["compare", "omnetpp", "--accesses", "6000",
                 "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "TMCC speedup" in out
    assert "Compresso" in out


def test_sweep_command_small(capsys):
    assert main(["sweep", "omnetpp", "--accesses", "6000",
                 "--scale", "0.05", "--points", "2"]) == 0
    out = capsys.readouterr().out
    assert "perf vs Compresso" in out


def test_parser_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["compare", "doom3"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_trace_export_and_run(tmp_path, capsys):
    path = str(tmp_path / "omnetpp.rtrc")
    assert main(["trace", "export", "omnetpp", path,
                 "--accesses", "4000", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "wrote" in out and "accesses" in out
    assert main(["trace", "run", path, "--controller", "compresso"]) == 0
    out = capsys.readouterr().out
    assert "LLC misses" in out


def test_trace_run_rejects_unknown_controller(tmp_path, capsys):
    path = str(tmp_path / "t.rtrc")
    main(["trace", "export", "omnetpp", path,
          "--accesses", "2000", "--scale", "0.05"])
    capsys.readouterr()
    assert main(["trace", "run", path, "--controller", "hal9000"]) == 2
    assert "unknown controller" in capsys.readouterr().err


def test_trace_run_controller_list(capsys):
    assert main(["trace", "run", "--controller", "list"]) == 0
    names = capsys.readouterr().out.split()
    assert "tmcc" in names


def test_trace_run_requires_path(capsys):
    assert main(["trace", "run", "--controller", "tmcc"]) == 2
    assert "trace path is required" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Argument validation (one-line errors, exit code 2)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("argv, needle", [
    (["run", "mcf", "--accesses", "0"], "--accesses must be > 0"),
    (["run", "mcf", "--accesses", "-5"], "--accesses must be > 0"),
    (["run", "mcf", "--scale", "0"], "--scale must be in (0, 1]"),
    (["run", "mcf", "--scale", "1.5"], "--scale must be in (0, 1]"),
    (["run", "mcf", "--cores", "0"], "--cores must be >= 1"),
    (["run", "mcf", "--checkpoint-every", "-1"],
     "--checkpoint-every must be >= 0"),
    (["run", "mcf", "--checkpoint-every", "10"],
     "--checkpoint-every needs --checkpoint"),
    (["run", "mcf", "--wall-clock-limit", "0"],
     "--wall-clock-limit must be > 0"),
    (["sweep", "mcf", "--points", "-1"], "--points must be > 0"),
    (["sweep", "mcf", "--accesses", "0"], "--accesses must be > 0"),
    (["compare", "mcf", "--scale", "2"], "--scale must be in (0, 1]"),
    (["trace", "export", "mcf", "/tmp/t.rtrc", "--accesses", "0"],
     "--accesses must be > 0"),
    (["deflate", "graph", "--pages", "0"], "--pages must be > 0"),
])
def test_validation_one_line_errors(capsys, argv, needle):
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert needle in err
    assert len(err.strip().splitlines()) == 1  # one line, no traceback


def test_run_validation_failure_still_emits_json(capsys):
    assert main(["run", "mcf", "--accesses", "0", "--emit-json"]) == 2
    record = json.loads(capsys.readouterr().out)
    assert record["error_kind"] == "config"
    assert "--accesses" in record["error"]
    assert record["metrics"] == {}


def test_run_mid_run_failure_emits_json_with_metrics(tmp_path, capsys):
    """A checkpoint write to an unwritable path fails mid-run; the JSON
    error document still carries every metric collected so far."""
    missing_dir = tmp_path / "nope" / "ck.pkl"
    code = main(["run", "mcf", "--accesses", "6000", "--scale", "0.12",
                 "--checkpoint", str(missing_dir),
                 "--checkpoint-every", "300", "--emit-json"])
    assert code == 1
    captured = capsys.readouterr()
    record = json.loads(captured.out)
    assert record["error_kind"] == "resource"
    assert "checkpoint" in record["error"]
    assert record["metrics"].get("tlb.total", 0) > 0
    assert "error (resource)" in captured.err


def test_run_rejects_bad_fault_spec(capsys):
    assert main(["run", "mcf", "--faults", "hal9000:0.1"]) == 2
    assert "unknown fault kind" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Fault injection and supervised runs through the CLI
# ----------------------------------------------------------------------

RUN_SMALL = ["run", "mcf", "--accesses", "6000", "--scale", "0.12",
             "--seed", "3"]


def test_run_with_faults_reports_resilience_metrics(capsys):
    assert main(RUN_SMALL + ["--faults", "dram_read_error:0.02:2",
                             "--emit-json"]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["metrics"]["resilience.faults_injected"] > 0
    assert record["metrics"]["resilience.dram_retries"] > 0
    assert "resilience" in record["metrics_tree"]


def test_run_checkpoint_resume_matches_uninterrupted(tmp_path, capsys):
    assert main(RUN_SMALL) == 0
    baseline = capsys.readouterr().out
    path = str(tmp_path / "ck.pkl")
    assert main(RUN_SMALL + ["--checkpoint", path,
                             "--checkpoint-every", "300"]) == 0
    assert capsys.readouterr().out == baseline
    assert main(["run", "--resume", path]) == 0
    assert capsys.readouterr().out == baseline


def test_run_wall_clock_truncation_exits_3_then_resumes(tmp_path, capsys):
    assert main(RUN_SMALL) == 0
    baseline = capsys.readouterr().out
    path = str(tmp_path / "ck.pkl")
    code = main(RUN_SMALL + ["--checkpoint", path, "--emit-json",
                             "--wall-clock-limit", "1e-9"])
    assert code == 3
    captured = capsys.readouterr()
    record = json.loads(captured.out)
    assert record["truncated"] is True
    assert "wall-clock limit" in record["error"]
    assert "run truncated" in captured.err
    assert main(["run", "--resume", path]) == 0
    assert capsys.readouterr().out == baseline


def test_run_resume_rejects_garbage_checkpoint(tmp_path, capsys):
    path = tmp_path / "bogus.pkl"
    path.write_text("not a checkpoint")
    assert main(["run", "--resume", str(path)]) == 2
    assert "not a repro checkpoint" in capsys.readouterr().err


def test_run_resume_missing_checkpoint_is_resource_error(tmp_path, capsys):
    assert main(["run", "--resume", str(tmp_path / "missing.pkl")]) == 1
    assert "error (resource)" in capsys.readouterr().err


def test_run_rejects_faults_with_resume(tmp_path, capsys):
    assert main(["run", "--resume", str(tmp_path / "x.pkl"),
                 "--faults", "stale_cte"]) == 2
    assert "cannot be combined" in capsys.readouterr().err
