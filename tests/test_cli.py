"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_workloads_lists_all(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    for name in ("pageRank", "mcf", "omnetpp", "canneal", "triCount"):
        assert name in out


def test_workloads_json(capsys):
    assert main(["workloads", "--json"]) == 0
    records = json.loads(capsys.readouterr().out)
    assert {r["name"] for r in records} >= {"mcf", "omnetpp", "canneal"}
    assert all("kind" in r for r in records)


def test_run_controller_list(capsys):
    assert main(["run", "--controller", "list"]) == 0
    names = capsys.readouterr().out.split()
    assert "tmcc" in names and "compresso" in names
    assert "uncompressed" in names and "osinspired" in names
    from repro.core import available_controllers

    assert names == available_controllers()


def test_run_requires_workload(capsys):
    assert main(["run", "--controller", "tmcc"]) == 2
    assert "workload is required" in capsys.readouterr().err


def test_run_rejects_unknown_controller(capsys):
    assert main(["run", "omnetpp", "--controller", "hal9000"]) == 2
    assert "unknown controller" in capsys.readouterr().err


def test_run_rejects_unknown_workload(capsys):
    assert main(["run", "doom3"]) == 2
    assert "unknown workload" in capsys.readouterr().err


def test_run_emit_json_and_trace_events(tmp_path, capsys):
    events = tmp_path / "events.jsonl"
    assert main(["run", "omnetpp", "--accesses", "4000", "--scale", "0.05",
                 "--controller", "compresso", "--emit-json",
                 "--trace-events", str(events)]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["accesses"] > 0
    assert "tlb.hit_rate" in record["metrics"]
    assert "hit_rate" in record["metrics_tree"]["tlb"]
    lines = [json.loads(line) for line in events.read_text().splitlines()]
    assert lines, "expected at least one trace event"
    assert all("kind" in e and "time_ns" in e for e in lines)
    kinds = {e["kind"] for e in lines}
    assert "controller.access_path" in kinds or "sim.tlb_miss" in kinds


def test_compare_emit_json(capsys):
    assert main(["compare", "omnetpp", "--accesses", "6000",
                 "--scale", "0.05", "--emit-json"]) == 0
    record = json.loads(capsys.readouterr().out)
    assert set(record["systems"]) == {"uncompressed", "compresso", "tmcc"}
    tmcc = record["systems"]["tmcc"]
    assert "controller" in tmcc["metrics_tree"]
    assert "paths" in tmcc["metrics_tree"]["controller"]


def test_deflate_command(capsys):
    assert main(["deflate", "graph", "--pages", "3"]) == 0
    out = capsys.readouterr().out
    assert "round-trip OK" in out
    assert "our ASIC Deflate" in out


def test_deflate_rejects_unknown_profile(capsys):
    assert main(["deflate", "nonsense"]) == 2
    assert "unknown profile" in capsys.readouterr().err


def test_compare_command_small(capsys):
    assert main(["compare", "omnetpp", "--accesses", "6000",
                 "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "TMCC speedup" in out
    assert "Compresso" in out


def test_sweep_command_small(capsys):
    assert main(["sweep", "omnetpp", "--accesses", "6000",
                 "--scale", "0.05", "--points", "2"]) == 0
    out = capsys.readouterr().out
    assert "perf vs Compresso" in out


def test_parser_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["compare", "doom3"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_trace_export_and_run(tmp_path, capsys):
    path = str(tmp_path / "omnetpp.rtrc")
    assert main(["trace", "export", "omnetpp", path,
                 "--accesses", "4000", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "wrote" in out and "accesses" in out
    assert main(["trace", "run", path, "--controller", "compresso"]) == 0
    out = capsys.readouterr().out
    assert "LLC misses" in out


def test_trace_run_rejects_unknown_controller(tmp_path, capsys):
    path = str(tmp_path / "t.rtrc")
    main(["trace", "export", "omnetpp", path,
          "--accesses", "2000", "--scale", "0.05"])
    capsys.readouterr()
    assert main(["trace", "run", path, "--controller", "hal9000"]) == 2
    assert "unknown controller" in capsys.readouterr().err


def test_trace_run_controller_list(capsys):
    assert main(["trace", "run", "--controller", "list"]) == 0
    names = capsys.readouterr().out.split()
    assert "tmcc" in names


def test_trace_run_requires_path(capsys):
    assert main(["trace", "run", "--controller", "tmcc"]) == 2
    assert "trace path is required" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Argument validation (one-line errors, exit code 2)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("argv, needle", [
    (["run", "mcf", "--accesses", "0"], "--accesses must be > 0"),
    (["run", "mcf", "--accesses", "-5"], "--accesses must be > 0"),
    (["run", "mcf", "--scale", "0"], "--scale must be in (0, 1]"),
    (["run", "mcf", "--scale", "1.5"], "--scale must be in (0, 1]"),
    (["run", "mcf", "--cores", "0"], "--cores must be >= 1"),
    (["run", "mcf", "--checkpoint-every", "-1"],
     "--checkpoint-every must be >= 0"),
    (["run", "mcf", "--checkpoint-every", "10"],
     "--checkpoint-every needs --checkpoint"),
    (["run", "mcf", "--wall-clock-limit", "0"],
     "--wall-clock-limit must be > 0"),
    (["sweep", "mcf", "--points", "-1"], "--points must be > 0"),
    (["sweep", "mcf", "--accesses", "0"], "--accesses must be > 0"),
    (["compare", "mcf", "--scale", "2"], "--scale must be in (0, 1]"),
    (["trace", "export", "mcf", "/tmp/t.rtrc", "--accesses", "0"],
     "--accesses must be > 0"),
    (["deflate", "graph", "--pages", "0"], "--pages must be > 0"),
])
def test_validation_one_line_errors(capsys, argv, needle):
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert needle in err
    assert len(err.strip().splitlines()) == 1  # one line, no traceback


def test_run_validation_failure_still_emits_json(capsys):
    assert main(["run", "mcf", "--accesses", "0", "--emit-json"]) == 2
    record = json.loads(capsys.readouterr().out)
    assert record["error_kind"] == "config"
    assert "--accesses" in record["error"]
    assert record["metrics"] == {}


def test_run_mid_run_failure_emits_json_with_metrics(tmp_path, capsys):
    """A checkpoint write to an unwritable path fails mid-run; the JSON
    error document still carries every metric collected so far."""
    missing_dir = tmp_path / "nope" / "ck.pkl"
    code = main(["run", "mcf", "--accesses", "6000", "--scale", "0.12",
                 "--checkpoint", str(missing_dir),
                 "--checkpoint-every", "300", "--emit-json"])
    assert code == 1
    captured = capsys.readouterr()
    record = json.loads(captured.out)
    assert record["error_kind"] == "resource"
    assert "checkpoint" in record["error"]
    assert record["metrics"].get("tlb.total", 0) > 0
    assert "error (resource)" in captured.err


def test_run_rejects_bad_fault_spec(capsys):
    assert main(["run", "mcf", "--faults", "hal9000:0.1"]) == 2
    assert "unknown fault kind" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Fault injection and supervised runs through the CLI
# ----------------------------------------------------------------------

RUN_SMALL = ["run", "mcf", "--accesses", "6000", "--scale", "0.12",
             "--seed", "3"]


def test_run_with_faults_reports_resilience_metrics(capsys):
    assert main(RUN_SMALL + ["--faults", "dram_read_error:0.02:2",
                             "--emit-json"]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["metrics"]["resilience.faults_injected"] > 0
    assert record["metrics"]["resilience.dram_retries"] > 0
    assert "resilience" in record["metrics_tree"]


def test_run_checkpoint_resume_matches_uninterrupted(tmp_path, capsys):
    assert main(RUN_SMALL) == 0
    baseline = capsys.readouterr().out
    path = str(tmp_path / "ck.pkl")
    assert main(RUN_SMALL + ["--checkpoint", path,
                             "--checkpoint-every", "300"]) == 0
    assert capsys.readouterr().out == baseline
    assert main(["run", "--resume", path]) == 0
    assert capsys.readouterr().out == baseline


def test_run_wall_clock_truncation_exits_3_then_resumes(tmp_path, capsys):
    assert main(RUN_SMALL) == 0
    baseline = capsys.readouterr().out
    path = str(tmp_path / "ck.pkl")
    code = main(RUN_SMALL + ["--checkpoint", path, "--emit-json",
                             "--wall-clock-limit", "1e-9"])
    assert code == 3
    captured = capsys.readouterr()
    record = json.loads(captured.out)
    assert record["truncated"] is True
    assert "wall-clock limit" in record["error"]
    assert "run truncated" in captured.err
    assert main(["run", "--resume", path]) == 0
    assert capsys.readouterr().out == baseline


def test_run_resume_rejects_garbage_checkpoint(tmp_path, capsys):
    path = tmp_path / "bogus.pkl"
    path.write_text("not a checkpoint")
    assert main(["run", "--resume", str(path)]) == 2
    assert "not a repro checkpoint" in capsys.readouterr().err


def test_run_resume_missing_checkpoint_is_resource_error(tmp_path, capsys):
    assert main(["run", "--resume", str(tmp_path / "missing.pkl")]) == 1
    assert "error (resource)" in capsys.readouterr().err


def test_run_rejects_faults_with_resume(tmp_path, capsys):
    assert main(["run", "--resume", str(tmp_path / "x.pkl"),
                 "--faults", "stale_cte"]) == 2
    assert "cannot be combined" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Observability: tracing, time series, profiling, reports
# ----------------------------------------------------------------------

@pytest.mark.parametrize("argv, needle", [
    (["run", "mcf", "--trace-sample", "0", "--trace-out", "/tmp/t.json"],
     "--trace-sample must be >= 1"),
    (["run", "mcf", "--trace-sample", "8"], "--trace-sample needs --trace-out"),
    (["run", "mcf", "--trace-out", "/tmp/t.json", "--trace-buffer", "1"],
     "--trace-buffer must be >= 2"),
    (["run", "mcf", "--interval-ns", "0", "--interval-out", "/tmp/s.csv"],
     "--interval-ns must be > 0"),
    (["run", "mcf", "--interval-ns", "100"],
     "--interval-ns needs --interval-out"),
    (["run", "mcf", "--interval-out", "/tmp/s.csv"],
     "--interval-out needs --interval-ns"),
])
def test_observability_validation_errors(capsys, argv, needle):
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert needle in err
    assert len(err.strip().splitlines()) == 1


def test_run_emit_json_identical_with_observability_on(tmp_path, capsys):
    """Tracing/time-series/profiling must not perturb simulation metrics.

    ``profile.*`` keys are host wall-clock and non-deterministic, so the
    regression check strips them; every simulated metric must be
    byte-identical.
    """
    argv = ["run", "mcf", "--accesses", "6000", "--scale", "0.12",
            "--seed", "3", "--emit-json"]
    assert main(argv) == 0
    baseline = json.loads(capsys.readouterr().out)
    assert main(argv + [
        "--trace-sample", "16", "--trace-out", str(tmp_path / "t.json"),
        "--trace-buffer", "256",
        "--interval-ns", "1000000", "--interval-out", str(tmp_path / "s.csv"),
        "--profile"]) == 0
    observed = json.loads(capsys.readouterr().out)
    observed["metrics"] = {k: v for k, v in observed["metrics"].items()
                           if not k.startswith("profile.")}
    observed["metrics_tree"].pop("profile", None)
    assert json.dumps(observed, sort_keys=True) == \
        json.dumps(baseline, sort_keys=True)


def test_emit_json_keys_are_sorted(capsys):
    assert main(["run", "mcf", "--accesses", "4000", "--scale", "0.12",
                 "--emit-json"]) == 0
    out = capsys.readouterr().out
    record = json.loads(out)
    metric_keys = list(record["metrics"])
    assert metric_keys == sorted(metric_keys)
    # The whole document is dumped with sort_keys: re-dumping sorted
    # reproduces the exact bytes.
    assert out.strip() == json.dumps(record, indent=2, sort_keys=True)


def test_run_trace_out_perfetto_and_report(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    series = tmp_path / "series.csv"
    result = tmp_path / "run.json"
    argv = ["run", "mcf", "--accesses", "6000", "--scale", "0.12",
            "--seed", "3", "--emit-json",
            "--trace-sample", "8", "--trace-out", str(trace),
            "--interval-ns", "1000000", "--interval-out", str(series)]
    assert main(argv) == 0
    captured = capsys.readouterr()
    result.write_text(captured.out)

    document = json.loads(trace.read_text())
    assert isinstance(document["traceEvents"], list) and document["traceEvents"]
    categories = {e["cat"] for e in document["traceEvents"]}
    assert "access" in categories
    assert series.read_text().startswith("window,start_ns,end_ns,")

    assert main(["report", str(result), "--trace", str(trace),
                 "--timeseries", str(series)]) == 0
    out = capsys.readouterr().out
    assert "# Run report: mcf" in out
    assert "## Headline metrics" in out
    assert "## Slowest spans" in out
    assert "## Time series" in out


def test_trace_convert_round_trip(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    assert main(["run", "mcf", "--accesses", "4000", "--scale", "0.12",
                 "--trace-sample", "8", "--trace-out", str(trace)]) == 0
    capsys.readouterr()
    jsonl = tmp_path / "trace.jsonl"
    assert main(["trace", "convert", str(trace), str(jsonl)]) == 0
    assert "converted" in capsys.readouterr().out
    from repro.sim.tracing import load_spans

    assert load_spans(jsonl) == load_spans(trace)


def test_trace_convert_bad_input(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("garbage\n")
    assert main(["trace", "convert", str(bad), str(tmp_path / "o.json")]) == 2
    assert "error (config)" in capsys.readouterr().err


def test_run_profile_prints_host_sections(capsys):
    assert main(["run", "mcf", "--accesses", "4000", "--scale", "0.12",
                 "--profile"]) == 0
    out = capsys.readouterr().out
    assert "sim.access" in out
    assert "self_ms" in out


def test_report_compare_exit_codes(tmp_path, capsys):
    base = ["run", "mcf", "--accesses", "6000", "--scale", "0.12",
            "--emit-json"]
    assert main(base + ["--seed", "3"]) == 0
    a = tmp_path / "a.json"
    a.write_text(capsys.readouterr().out)
    assert main(base + ["--seed", "4"]) == 0
    b = tmp_path / "b.json"
    b.write_text(capsys.readouterr().out)

    assert main(["report", "--compare", str(a), str(b)]) == 0
    out = capsys.readouterr().out
    assert out.startswith("comparing")
    assert "delta" in out and "relative" in out

    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"workload": "w"}))
    assert main(["report", "--compare", str(a), str(bad)]) == 2
    assert "error (config)" in capsys.readouterr().err


def test_report_requires_result_or_compare(capsys):
    assert main(["report"]) == 2
    assert "error (config)" in capsys.readouterr().err
