"""End-to-end regression: the paper's headline shapes at test scale.

A fast (~1 min) version of the benchmark harness's core claims, kept in
the test suite so any refactor that breaks the reproduction's *story* --
not just its code -- fails CI.  Bands are wide; the benchmarks measure
the precise numbers.
"""

import pytest

from repro.common.units import PAGE_SIZE
from repro.compression.block import SelectiveBlockCompressor
from repro.compression.deflate import DeflateCodec, DeflateTimingModel, IBMDeflateModel
from repro.sim.experiments import iso_capacity_comparison, run_workload
from repro.workloads.dumps import dump_pages
from repro.workloads.suite import workload_by_name


@pytest.fixture(scope="module")
def iso():
    workload = workload_by_name("shortestPath", max_accesses=50_000, scale=0.5)
    return workload, iso_capacity_comparison(workload)


def test_headline_claim_1_performance_at_iso_capacity(iso):
    """TMCC improves performance without sacrificing effective capacity."""
    _, result = iso
    assert result.speedup > 1.05
    assert result.tmcc.dram_used_bytes <= result.compresso.dram_used_bytes * 1.02


def test_headline_claim_2_translation_latency(iso):
    """TMCC hides the compression translation; Compresso pays ~20 ns."""
    workload, result = iso
    base = run_workload(workload, "uncompressed")
    compresso_penalty = (result.compresso.avg_l3_miss_latency_ns
                         - base.avg_l3_miss_latency_ns)
    tmcc_penalty = (result.tmcc.avg_l3_miss_latency_ns
                    - base.avg_l3_miss_latency_ns)
    assert compresso_penalty > 10
    assert tmcc_penalty < compresso_penalty / 2


def test_headline_claim_3_deflate_speedup():
    """The memory-specialized Deflate is ~4x IBM's on 4 KB pages."""
    codec = DeflateCodec()
    timing = DeflateTimingModel()
    ibm = IBMDeflateModel()
    page = dump_pages("pageRank", num_pages=1)[0]
    compressed = codec.compress(page)
    assert codec.decompress(compressed) == page
    full_speedup = ibm.decompress_latency_ns(PAGE_SIZE) / \
        timing.decompress_latency_ns(compressed)
    half_speedup = ibm.decompress_latency_ns(PAGE_SIZE, PAGE_SIZE // 2) / \
        timing.decompress_latency_ns(compressed, PAGE_SIZE // 2)
    assert full_speedup > 2.5
    assert half_speedup > 4.0


def test_headline_claim_4_compression_ratio_gap():
    """Page-level Deflate roughly doubles block-level compression."""
    codec = DeflateCodec()
    blocks = SelectiveBlockCompressor()
    pages = dump_pages("pageRank", num_pages=8)
    deflate_total = sum(codec.compressed_size(p) for p in pages)
    block_total = sum(blocks.compressed_page_size(p) for p in pages)
    assert block_total > 1.7 * deflate_total


def test_headline_claim_5_cte_reach(iso):
    """Page-level CTEs cache far better than block-level ones."""
    _, result = iso
    assert result.tmcc.cte_hit_rate > result.compresso.cte_hit_rate + 0.1
