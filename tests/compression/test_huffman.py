"""Tests for reduced and full Huffman codecs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.huffman import (
    ESCAPE,
    FullHuffmanCodec,
    ReducedHuffmanCodec,
    ReducedTreeConfig,
    _canonical_codes,
    _huffman_code_lengths,
)


# ----------------------------------------------------------------------
# Construction helpers
# ----------------------------------------------------------------------

def test_code_lengths_simple():
    lengths = _huffman_code_lengths({0: 100, 1: 1, 2: 1})
    assert lengths[0] == 1
    assert lengths[1] == 2
    assert lengths[2] == 2


def test_code_lengths_single_symbol():
    assert _huffman_code_lengths({65: 10}) == {65: 1}


def test_code_lengths_empty():
    assert _huffman_code_lengths({}) == {}


def test_canonical_codes_are_prefix_free():
    lengths = _huffman_code_lengths({i: 2**i for i in range(8)})
    codes = _canonical_codes(lengths)
    entries = sorted(codes.values(), key=lambda cl: cl[1])
    for i, (code_a, len_a) in enumerate(entries):
        for code_b, len_b in entries[i + 1 :]:
            assert (code_b >> (len_b - len_a)) != code_a, "prefix violation"


def test_kraft_inequality_holds():
    lengths = _huffman_code_lengths({i: i + 1 for i in range(16)})
    assert sum(2.0 ** -length for length in lengths.values()) <= 1.0 + 1e-12


# ----------------------------------------------------------------------
# Reduced codec
# ----------------------------------------------------------------------

def test_reduced_roundtrip_text():
    codec = ReducedHuffmanCodec()
    data = b"the reduced tree only keeps the fifteen hottest characters" * 10
    assert codec.decode(codec.encode(data)) == data


def test_reduced_roundtrip_empty():
    codec = ReducedHuffmanCodec()
    assert codec.decode(codec.encode(b"")) == b""


def test_reduced_roundtrip_single_byte():
    codec = ReducedHuffmanCodec()
    assert codec.decode(codec.encode(b"z")) == b"z"


def test_reduced_roundtrip_uniform_bytes():
    """All 256 values present: most go through the escape path."""
    codec = ReducedHuffmanCodec()
    data = bytes(range(256)) * 4
    assert codec.decode(codec.encode(data)) == data


def test_reduced_compresses_skewed_input():
    codec = ReducedHuffmanCodec()
    data = b"\x00" * 3000 + b"\x01" * 500 + bytes(range(100))
    assert len(codec.encode(data)) < len(data) // 2


def test_reduced_tree_size_limit():
    codec = ReducedHuffmanCodec()
    lengths = codec.build_lengths(bytes(range(200)) * 3)
    assert len(lengths) <= codec.config.tree_size
    assert ESCAPE in lengths


def test_reduced_depth_threshold_enforced():
    config = ReducedTreeConfig(tree_size=16, depth_threshold=5)
    codec = ReducedHuffmanCodec(config)
    # Exponential frequencies force a skewed tree without a depth cap.
    data = b"".join(bytes([i]) * (2 ** i) for i in range(14))
    lengths = codec.build_lengths(data)
    assert max(lengths.values()) <= 5
    assert codec.decode(codec.encode(data)) == data


def test_reduced_escape_never_discarded():
    config = ReducedTreeConfig(tree_size=4, depth_threshold=2)
    codec = ReducedHuffmanCodec(config)
    data = b"aabbccddeeffgg" * 20
    lengths = codec.build_lengths(data)
    assert ESCAPE in lengths
    assert codec.decode(codec.encode(data)) == data


def test_reduced_config_validation():
    with pytest.raises(ValueError):
        ReducedTreeConfig(tree_size=1)
    with pytest.raises(ValueError):
        ReducedTreeConfig(depth_threshold=0)
    with pytest.raises(ValueError):
        ReducedTreeConfig(tree_size=32, depth_threshold=4)


def test_reduced_rejects_oversized_input():
    with pytest.raises(ValueError):
        ReducedHuffmanCodec().encode(bytes(1 << 16))


def test_encoded_size_bits_matches_encode():
    codec = ReducedHuffmanCodec()
    data = b"abcabcabcxyz" * 50
    bits = codec.encoded_size_bits(data)
    blob = codec.encode(data)
    assert (bits + 7) // 8 == len(blob)


@settings(max_examples=60, deadline=None)
@given(st.binary(min_size=0, max_size=1500))
def test_reduced_roundtrip_property(data):
    codec = ReducedHuffmanCodec()
    assert codec.decode(codec.encode(data)) == data


@settings(max_examples=25, deadline=None)
@given(st.binary(min_size=1, max_size=800),
       st.sampled_from([4, 8, 16, 32]),
       st.sampled_from([6, 8, 12]))
def test_reduced_roundtrip_property_configs(data, tree_size, depth):
    if tree_size > (1 << depth):
        return
    codec = ReducedHuffmanCodec(ReducedTreeConfig(tree_size, depth))
    assert codec.decode(codec.encode(data)) == data


# ----------------------------------------------------------------------
# Full codec
# ----------------------------------------------------------------------

def test_full_roundtrip_text():
    codec = FullHuffmanCodec()
    data = b"canonical trees pay a 128-byte table" * 20
    assert codec.decode(codec.encode(data)) == data


def test_full_roundtrip_empty():
    codec = FullHuffmanCodec()
    assert codec.decode(codec.encode(b"")) == b""


def test_full_tree_overhead_is_constant():
    assert FullHuffmanCodec().tree_bits() == 1024


def test_full_beats_reduced_on_flat_distribution():
    """With many equally-hot symbols the full tree codes them all."""
    data = bytes(range(64)) * 32  # 64 symbols, uniform
    full = FullHuffmanCodec().encode(data)
    reduced = ReducedHuffmanCodec().encode(data)
    assert len(full) < len(reduced)


def test_reduced_beats_full_on_small_skewed_input():
    """On a small skewed page the 128-byte table costs more than escapes."""
    data = b"\x07" * 300 + b"\x09" * 40
    full = FullHuffmanCodec().encode(data)
    reduced = ReducedHuffmanCodec().encode(data)
    assert len(reduced) < len(full)


@settings(max_examples=40, deadline=None)
@given(st.binary(min_size=0, max_size=1200))
def test_full_roundtrip_property(data):
    codec = FullHuffmanCodec()
    assert codec.decode(codec.encode(data)) == data


# ----------------------------------------------------------------------
# 1.1 Pass approximate frequency counting (Section V-B3)
# ----------------------------------------------------------------------

def test_one_point_one_pass_roundtrips():
    codec = ReducedHuffmanCodec(ReducedTreeConfig(frequency_sample_fraction=0.125))
    data = b"prefix-biased content " * 30 + bytes(range(200))
    assert codec.decode(codec.encode(data)) == data


def test_one_point_one_pass_never_beats_exact_counting():
    """Sampling only a prefix picks (at best) the same hot set."""
    exact = ReducedHuffmanCodec(ReducedTreeConfig(frequency_sample_fraction=1.0))
    sampled = ReducedHuffmanCodec(ReducedTreeConfig(frequency_sample_fraction=0.1))
    # A page whose prefix misrepresents the global distribution.
    data = bytes([1, 2, 3, 4] * 100) + bytes([9] * 3000)
    assert len(exact.encode(data)) <= len(sampled.encode(data))


def test_one_point_one_pass_hurts_on_shifted_distributions():
    sampled = ReducedHuffmanCodec(ReducedTreeConfig(frequency_sample_fraction=0.05))
    data = bytes([i % 16 for i in range(200)]) + bytes([200] * 3800)
    exact = ReducedHuffmanCodec()
    assert len(sampled.encode(data)) > len(exact.encode(data))


def test_frequency_sample_fraction_validation():
    with pytest.raises(ValueError):
        ReducedTreeConfig(frequency_sample_fraction=0.0)
    with pytest.raises(ValueError):
        ReducedTreeConfig(frequency_sample_fraction=1.5)
