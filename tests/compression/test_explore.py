"""Tests for the design-space explorer."""

import pytest

from repro.common.units import KIB
from repro.compression.deflate import DeflateConfig
from repro.compression.explore import (
    DesignPoint,
    DesignSpaceExplorer,
    paper_design_point,
    pareto_frontier,
)
from repro.workloads.content import ContentSynthesizer


@pytest.fixture(scope="module")
def corpus():
    synthesizer = ContentSynthesizer("graph", seed=6)
    return [synthesizer.page(v) for v in range(6)]


@pytest.fixture(scope="module")
def sweep(corpus):
    explorer = DesignSpaceExplorer(corpus)
    return explorer.sweep(cam_sizes=(256, 1 * KIB, 4 * KIB),
                          tree_sizes=(8, 16))


def test_empty_corpus_rejected():
    with pytest.raises(ValueError):
        DesignSpaceExplorer([])


def test_evaluate_single_point(corpus):
    explorer = DesignSpaceExplorer(corpus)
    point = explorer.evaluate(DeflateConfig())
    assert point.cam_size == 1 * KIB
    assert point.tree_size == 16
    assert point.ratio > 1.5
    assert point.area_mm2 == pytest.approx(0.13, abs=0.01)
    assert point.half_page_latency_ns > 0


def test_sweep_covers_the_grid(sweep):
    assert len(sweep) == 6
    assert {p.cam_size for p in sweep} == {256, 1 * KIB, 4 * KIB}
    assert {p.tree_size for p in sweep} == {8, 16}


def test_sweep_skips_infeasible_trees(corpus):
    explorer = DesignSpaceExplorer(corpus)
    points = explorer.sweep(cam_sizes=(1 * KIB,), tree_sizes=(16, 32),
                            depth_threshold=4)
    # 32 leaves cannot fit in depth 4; only the 16-leaf point survives.
    assert {p.tree_size for p in points} == {16}


def test_bigger_cam_never_worse_ratio(sweep):
    by_tree = {}
    for point in sweep:
        by_tree.setdefault(point.tree_size, []).append(point)
    for points in by_tree.values():
        ordered = sorted(points, key=lambda p: p.cam_size)
        for small, big in zip(ordered, ordered[1:]):
            assert big.ratio >= small.ratio * 0.99


def test_dominates_relation():
    base = dict(tree_size=16, depth_threshold=8, dynamic_huffman_skip=True,
                frequency_sample_fraction=1.0, compress_latency_ns=500.0,
                power_mw=400.0)
    good = DesignPoint(cam_size=1024, ratio=3.0, half_page_latency_ns=140.0,
                       area_mm2=0.13, **base)
    worse = DesignPoint(cam_size=4096, ratio=2.9, half_page_latency_ns=150.0,
                        area_mm2=0.38, **base)
    assert good.dominates(worse)
    assert not worse.dominates(good)
    assert not good.dominates(good)


def test_pareto_frontier_contains_paper_point(sweep):
    frontier = pareto_frontier(sweep)
    assert frontier
    chosen = paper_design_point(sweep)
    assert chosen is not None
    assert chosen in frontier, (
        "the paper's 1 KB CAM / 16-leaf / skip-on point should be "
        "non-dominated on this corpus"
    )


def test_paper_design_point_absent_when_not_swept(corpus):
    explorer = DesignSpaceExplorer(corpus)
    points = explorer.sweep(cam_sizes=(256,), tree_sizes=(8,))
    assert paper_design_point(points) is None
