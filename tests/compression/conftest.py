"""Shared fixtures: representative 64 B blocks and 4 KB pages."""

import random

import pytest

from repro.common.units import BLOCK_SIZE, PAGE_SIZE


def _rng():
    return random.Random(0xC0FFEE)


@pytest.fixture(scope="session")
def sample_blocks():
    """A zoo of 64 B blocks spanning the hardware-relevant patterns."""
    rng = _rng()
    pointer_base = 0x7F3A_1200_0000
    pointers = b"".join(
        (pointer_base + i * 64).to_bytes(8, "little") for i in range(8)
    )
    small_ints = b"".join(
        rng.randint(0, 200).to_bytes(4, "little") for _ in range(16)
    )
    repeated = bytes([0xAB, 0xCD] * 32)
    text = b"the quick brown fox jumps over the lazy dog, again and MORE"
    text = (text + bytes(BLOCK_SIZE))[:BLOCK_SIZE]
    return {
        "zero": bytes(BLOCK_SIZE),
        "pointers": pointers,
        "small_ints": small_ints,
        "repeated": repeated,
        "text": text,
        "random": bytes(rng.randrange(256) for _ in range(BLOCK_SIZE)),
        "one_hot": bytes([0] * 37 + [0x80] + [0] * 26),
    }


@pytest.fixture(scope="session")
def sample_pages():
    """A zoo of 4 KB pages spanning the compressibility spectrum."""
    rng = _rng()
    text_seed = (
        b"In computing, memory compression is a technique to reduce the "
        b"physical footprint of data kept in main memory. "
    )
    text_page = (text_seed * (PAGE_SIZE // len(text_seed) + 1))[:PAGE_SIZE]
    heap_words = []
    base = 0x5555_0000_0000
    for i in range(PAGE_SIZE // 8):
        if rng.random() < 0.3:
            heap_words.append((base + rng.randint(0, 1 << 20)).to_bytes(8, "little"))
        elif rng.random() < 0.5:
            heap_words.append(rng.randint(0, 255).to_bytes(8, "little"))
        else:
            heap_words.append(bytes(8))
    heap_page = b"".join(heap_words)
    sparse = bytearray(PAGE_SIZE)
    for _ in range(40):
        offset = rng.randrange(PAGE_SIZE - 8)
        sparse[offset : offset + 8] = rng.randbytes(8)
    return {
        "zeros": bytes(PAGE_SIZE),
        "text": text_page,
        "heap": heap_page,
        "sparse": bytes(sparse),
        "random": rng.randbytes(PAGE_SIZE),
    }
