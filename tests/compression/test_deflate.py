"""Tests for the memory-specialized Deflate codec and its models."""

import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.units import KIB, PAGE_SIZE
from repro.compression.deflate import (
    MODE_LZ_HUFFMAN,
    MODE_LZ_ONLY,
    MODE_RAW,
    AsicAreaModel,
    CompressedPage,
    DeflateCodec,
    DeflateConfig,
    DeflateTimingModel,
    IBMDeflateModel,
    corpus_ratio,
)
from repro.compression.lz import LZConfig


@pytest.fixture(scope="module")
def codec():
    return DeflateCodec()


# ----------------------------------------------------------------------
# Functional codec
# ----------------------------------------------------------------------

def test_roundtrip_sample_pages(codec, sample_pages):
    for name, page in sample_pages.items():
        compressed = codec.compress(page)
        assert codec.decompress(compressed) == page, name


def test_compressible_page_uses_huffman(codec, sample_pages):
    compressed = codec.compress(sample_pages["text"])
    assert compressed.mode == MODE_LZ_HUFFMAN
    assert compressed.size_bytes < PAGE_SIZE // 3


def test_random_page_falls_back(codec, sample_pages):
    compressed = codec.compress(sample_pages["random"])
    assert compressed.mode in (MODE_RAW, MODE_LZ_ONLY)
    assert compressed.size_bytes <= PAGE_SIZE + 3


def test_dynamic_skip_prevents_huffman_expansion(sample_pages):
    """With skip off, Huffman may expand; with skip on it never may."""
    with_skip = DeflateCodec(DeflateConfig(dynamic_huffman_skip=True))
    without_skip = DeflateCodec(DeflateConfig(dynamic_huffman_skip=False))
    for page in sample_pages.values():
        a = with_skip.compress(page)
        b = without_skip.compress(page)
        assert a.size_bytes <= b.size_bytes
        assert with_skip.decompress(a) == page
        assert without_skip.decompress(b) == page


def test_ratio_and_size_helpers(codec, sample_pages):
    page = sample_pages["text"]
    assert codec.ratio(page) == PAGE_SIZE / codec.compressed_size(page)
    assert codec.ratio(page) > 3.0


def test_compress_validates_input(codec):
    with pytest.raises(ValueError):
        codec.compress(b"")
    with pytest.raises(ValueError):
        codec.compress(bytes(1 << 16))


def test_ratio_ordering_matches_figure15(codec, sample_pages):
    """Deflate beats block-level but stays below zlib on realistic pages.

    This is the Figure 15 ordering: block-level 1.51x < ours 3.4x < gzip.
    """
    from repro.compression.block import SelectiveBlockCompressor

    page = sample_pages["heap"]
    block_ratio = SelectiveBlockCompressor().page_ratio(page)
    our_ratio = codec.ratio(page)
    gzip_ratio = PAGE_SIZE / len(zlib.compress(page, 9))
    assert block_ratio < our_ratio
    assert our_ratio > 0.75 * gzip_ratio  # "similar compression ratio"


def test_corpus_ratio(codec, sample_pages):
    pages = [sample_pages["text"], sample_pages["heap"]]
    ratio = corpus_ratio(codec, pages)
    assert ratio > 1.5


def test_decompress_rejects_unknown_mode(codec, sample_pages):
    bad = CompressedPage(7, PAGE_SIZE, b"", codec.compress(sample_pages["text"]).lz_stats)
    with pytest.raises(ValueError):
        codec.decompress(bad)


@settings(max_examples=25, deadline=None)
@given(st.binary(min_size=1, max_size=PAGE_SIZE))
def test_roundtrip_property(data):
    codec = DeflateCodec()
    assert codec.decompress(codec.compress(data)) == data


@settings(max_examples=10, deadline=None)
@given(st.sampled_from([256, 512, 1024, 4096]))
def test_roundtrip_across_cam_sizes(window):
    codec = DeflateCodec(DeflateConfig(lz=LZConfig(window_size=window)))
    page = (b"structured data " * 300)[:PAGE_SIZE]
    assert codec.decompress(codec.compress(page)) == page


def test_larger_cam_never_hurts_ratio(sample_pages):
    """Section V-B2: ratio grows (weakly) with CAM size."""
    page = sample_pages["text"]
    sizes = [256, 512, 1024, 4096]
    ratios = []
    for window in sizes:
        codec = DeflateCodec(DeflateConfig(lz=LZConfig(window_size=window)))
        ratios.append(codec.ratio(page))
    assert all(b >= a * 0.999 for a, b in zip(ratios, ratios[1:]))


# ----------------------------------------------------------------------
# Timing model (Table II)
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def typical_page(codec, sample_pages):
    """The heap page compresses ~3.2x, close to the paper's 3.4x geomean."""
    return codec.compress(sample_pages["heap"])


def test_our_decompress_latency_near_table2(typical_page):
    model = DeflateTimingModel()
    latency = model.decompress_latency_ns(typical_page)
    assert 150 <= latency <= 450  # Table II: 277 ns


def test_half_page_latency_is_cheaper(typical_page):
    model = DeflateTimingModel()
    full = model.decompress_latency_ns(typical_page)
    half = model.decompress_latency_ns(typical_page, PAGE_SIZE // 2)
    assert half < full
    assert half > full / 4


def test_our_compress_latency_near_table2(typical_page):
    model = DeflateTimingModel()
    latency = model.compress_latency_ns(typical_page)
    assert 300 <= latency <= 900  # Table II: 662 ns


def test_our_deflate_beats_ibm_by_around_4x(typical_page):
    ours = DeflateTimingModel()
    ibm = IBMDeflateModel()
    speedup = ibm.decompress_latency_ns(PAGE_SIZE) / ours.decompress_latency_ns(typical_page)
    assert speedup > 2.5  # paper: ~4x


def test_half_page_speedup_is_larger(typical_page):
    """Table II: half-page decompression is ~6x faster than IBM's."""
    ours = DeflateTimingModel()
    ibm = IBMDeflateModel()
    full_speedup = ibm.decompress_latency_ns(PAGE_SIZE) / ours.decompress_latency_ns(
        typical_page
    )
    half_speedup = ibm.decompress_latency_ns(
        PAGE_SIZE, PAGE_SIZE // 2
    ) / ours.decompress_latency_ns(typical_page, PAGE_SIZE // 2)
    assert half_speedup > full_speedup


def test_throughput_exceeds_ddr4_channel(typical_page):
    """Paper: total throughput of one module exceeds 25.6 GB/s."""
    model = DeflateTimingModel()
    total = model.compress_throughput_gbps(typical_page) + model.decompress_throughput_gbps(
        typical_page
    )
    assert total > 25.6


def test_ibm_model_matches_published_numbers():
    ibm = IBMDeflateModel()
    assert ibm.decompress_latency_ns(PAGE_SIZE) == pytest.approx(1100, rel=0.02)
    assert ibm.compress_latency_ns(PAGE_SIZE) == pytest.approx(1050, rel=0.02)
    assert ibm.decompress_latency_ns(PAGE_SIZE, PAGE_SIZE // 2) == pytest.approx(878, rel=0.02)
    assert ibm.decompress_throughput_gbps(PAGE_SIZE) == pytest.approx(3.7, rel=0.03)
    assert ibm.compress_throughput_gbps(PAGE_SIZE) == pytest.approx(3.9, rel=0.03)


def test_raw_mode_timing_is_fast(codec, sample_pages):
    compressed = codec.compress(sample_pages["random"])
    model = DeflateTimingModel()
    assert model.decompress_latency_ns(compressed) < model.decompress_latency_ns(
        codec.compress(sample_pages["text"])
    ) or compressed.mode != MODE_RAW


# ----------------------------------------------------------------------
# Area/power model (Table I)
# ----------------------------------------------------------------------

def test_area_model_matches_table1():
    model = AsicAreaModel()
    areas = model.module_areas_mm2(cam_size=KIB, tree_size=16)
    assert areas["lz_compressor"] == pytest.approx(0.060)
    assert areas["lz_decompressor"] == pytest.approx(0.022)
    assert areas["huffman_compressor"] == pytest.approx(0.034)
    assert areas["huffman_decompressor"] == pytest.approx(0.014)
    assert model.total_area_mm2() == pytest.approx(0.13, abs=0.01)
    assert model.total_power_mw() == pytest.approx(447, abs=1)


def test_area_scales_with_cam():
    model = AsicAreaModel()
    assert model.module_areas_mm2(cam_size=4 * KIB)["lz_compressor"] == pytest.approx(0.24)
    assert model.total_area_mm2(cam_size=256) < model.total_area_mm2(cam_size=KIB)


def test_compressed_page_size_includes_header(codec, sample_pages):
    compressed = codec.compress(sample_pages["heap"])
    assert compressed.size_bytes == 3 + len(compressed.payload)


def test_mode_raw_never_expands_beyond_header(codec):
    import random

    rng = random.Random(44)
    page = rng.randbytes(PAGE_SIZE)
    compressed = codec.compress(page)
    assert compressed.size_bytes <= PAGE_SIZE + 3
