"""Tests for 64 B block compressors (BDI, BPC, C-Pack, zero, selector)."""

import pytest
from hypothesis import given, strategies as st

from repro.common.units import BLOCK_SIZE, PAGE_SIZE
from repro.compression.block import (
    BDICompressor,
    BPCCompressor,
    CPackCompressor,
    SelectiveBlockCompressor,
    ZeroBlockCompressor,
)

ALL_ALGORITHMS = [BDICompressor, BPCCompressor, CPackCompressor, ZeroBlockCompressor]

block_strategy = st.binary(min_size=BLOCK_SIZE, max_size=BLOCK_SIZE)


# ----------------------------------------------------------------------
# Zero-block
# ----------------------------------------------------------------------

def test_zero_block_compresses_to_one_bit():
    compressor = ZeroBlockCompressor()
    result = compressor.compress(bytes(BLOCK_SIZE))
    assert result is not None
    assert result.size_bits == 1
    assert compressor.decompress(result) == bytes(BLOCK_SIZE)


def test_zero_block_rejects_nonzero():
    compressor = ZeroBlockCompressor()
    block = bytearray(BLOCK_SIZE)
    block[63] = 1
    assert compressor.compress(bytes(block)) is None


# ----------------------------------------------------------------------
# BDI
# ----------------------------------------------------------------------

def test_bdi_compresses_pointer_array(sample_blocks):
    compressor = BDICompressor()
    result = compressor.compress(sample_blocks["pointers"])
    assert result is not None
    assert result.size_bits < BLOCK_SIZE * 8 // 2
    assert compressor.decompress(result) == sample_blocks["pointers"]


def test_bdi_compresses_small_ints(sample_blocks):
    compressor = BDICompressor()
    result = compressor.compress(sample_blocks["small_ints"])
    assert result is not None
    assert compressor.decompress(result) == sample_blocks["small_ints"]


def test_bdi_rejects_random(sample_blocks):
    assert BDICompressor().compress(sample_blocks["random"]) is None


def test_bdi_handles_negative_deltas():
    # Descending pointers exercise sign handling in the delta codec.
    base = 0x7FFF_0000
    block = b"".join((base - i * 3).to_bytes(8, "little") for i in range(8))
    compressor = BDICompressor()
    result = compressor.compress(block)
    assert result is not None
    assert compressor.decompress(result) == block


def test_bdi_mixed_base_and_immediate():
    # Small values near zero interleaved with values near a large base:
    # exactly the case the "immediate" zero-base encoding exists for.
    values = [0x1234_5678_0000, 5, 0x1234_5678_0010, 9,
              0x1234_5678_0020, 1, 0x1234_5678_0030, 0]
    block = b"".join(v.to_bytes(8, "little") for v in values)
    compressor = BDICompressor()
    result = compressor.compress(block)
    assert result is not None
    assert compressor.decompress(result) == block


# ----------------------------------------------------------------------
# C-Pack
# ----------------------------------------------------------------------

def test_cpack_compresses_repeated_words(sample_blocks):
    compressor = CPackCompressor()
    result = compressor.compress(sample_blocks["repeated"])
    assert result is not None
    assert compressor.decompress(result) == sample_blocks["repeated"]


def test_cpack_zero_words():
    compressor = CPackCompressor()
    result = compressor.compress(bytes(BLOCK_SIZE))
    assert result is not None
    assert result.size_bits == 2 * 16  # sixteen 'zzzz' patterns
    assert compressor.decompress(result) == bytes(BLOCK_SIZE)


def test_cpack_partial_match_paths():
    # Words sharing upper bytes exercise the 1100/1110 patterns.
    words = [0xAABBCC00 + i for i in range(8)] + [0xAABB0000 + i * 257 for i in range(8)]
    block = b"".join(w.to_bytes(4, "big") for w in words)
    compressor = CPackCompressor()
    result = compressor.compress(block)
    assert result is not None
    assert compressor.decompress(result) == block


def test_cpack_rejects_incompressible(sample_blocks):
    assert CPackCompressor().compress(sample_blocks["random"]) is None


# ----------------------------------------------------------------------
# BPC
# ----------------------------------------------------------------------

def test_bpc_compresses_arithmetic_sequence():
    block = b"".join((1000 + 4 * i).to_bytes(4, "big") for i in range(16))
    compressor = BPCCompressor()
    result = compressor.compress(block)
    assert result is not None
    assert result.size_bits < BLOCK_SIZE * 8 // 3
    assert compressor.decompress(result) == block


def test_bpc_roundtrip_on_wraparound_deltas():
    words = [0xFFFF_FFFF, 0x0000_0000, 0x8000_0000, 0x7FFF_FFFF] * 4
    block = b"".join(w.to_bytes(4, "big") for w in words)
    compressor = BPCCompressor()
    result = compressor.compress(block)
    if result is not None:  # may legitimately not fit
        assert compressor.decompress(result) == block


@given(block_strategy)
def test_bpc_roundtrip_property(block):
    compressor = BPCCompressor()
    result = compressor.compress(block)
    if result is not None:
        assert compressor.decompress(result) == block


@given(block_strategy)
def test_bdi_roundtrip_property(block):
    compressor = BDICompressor()
    result = compressor.compress(block)
    if result is not None:
        assert compressor.decompress(result) == block


@given(block_strategy)
def test_cpack_roundtrip_property(block):
    compressor = CPackCompressor()
    result = compressor.compress(block)
    if result is not None:
        assert compressor.decompress(result) == block


# ----------------------------------------------------------------------
# Selector
# ----------------------------------------------------------------------

def test_selector_roundtrips_all_sample_blocks(sample_blocks):
    selector = SelectiveBlockCompressor()
    for name, block in sample_blocks.items():
        compressed = selector.compress(block)
        assert selector.decompress(compressed) == block, name


def test_selector_never_worse_than_raw(sample_blocks):
    selector = SelectiveBlockCompressor()
    for block in sample_blocks.values():
        compressed = selector.compress(block)
        assert compressed.size_bits <= SelectiveBlockCompressor.HEADER_BITS + BLOCK_SIZE * 8


def test_selector_picks_zero_for_zero_block():
    selector = SelectiveBlockCompressor()
    assert selector.compress(bytes(BLOCK_SIZE)).algorithm == "zero"


def test_selector_raw_fallback(sample_blocks):
    selector = SelectiveBlockCompressor()
    compressed = selector.compress(sample_blocks["random"])
    assert compressed.algorithm == "raw"
    assert selector.decompress(compressed) == sample_blocks["random"]


def test_selector_page_interface(sample_pages):
    selector = SelectiveBlockCompressor()
    blocks = selector.compress_page(sample_pages["heap"])
    assert len(blocks) == PAGE_SIZE // BLOCK_SIZE
    restored = b"".join(
        selector.decompress(block) for block in blocks
    )
    assert restored == sample_pages["heap"]


def test_selector_page_rejects_misaligned():
    with pytest.raises(ValueError):
        SelectiveBlockCompressor().compress_page(b"x" * 100)


def test_selector_page_ratio_ordering(sample_pages):
    """Zeros compress best, random worst; heap data sits between."""
    selector = SelectiveBlockCompressor()
    zeros = selector.page_ratio(sample_pages["zeros"])
    heap = selector.page_ratio(sample_pages["heap"])
    rand = selector.page_ratio(sample_pages["random"])
    assert zeros > heap > rand
    assert rand <= 1.0 + 1e-9


@given(block_strategy)
def test_selector_roundtrip_property(block):
    selector = SelectiveBlockCompressor()
    assert selector.decompress(selector.compress(block)) == block


def test_block_size_validation():
    for compressor_cls in ALL_ALGORITHMS:
        with pytest.raises(ValueError):
            compressor_cls().compress(b"short")


# ----------------------------------------------------------------------
# Cross-algorithm behavioural checks
# ----------------------------------------------------------------------

def test_bdi_beats_cpack_on_pointer_arrays(sample_blocks):
    """Pointer arrays are BDI's home turf."""
    bdi = BDICompressor().compress(sample_blocks["pointers"])
    cpack = CPackCompressor().compress(sample_blocks["pointers"])
    assert bdi is not None
    if cpack is not None:
        assert bdi.size_bits <= cpack.size_bits


def test_cpack_beats_bdi_on_repeated_words(sample_blocks):
    """Exact word repetition is C-Pack's dictionary case."""
    cpack = CPackCompressor().compress(sample_blocks["repeated"])
    bdi = BDICompressor().compress(sample_blocks["repeated"])
    assert cpack is not None
    if bdi is not None:
        assert cpack.size_bits <= bdi.size_bits


def test_selector_matches_best_individual(sample_blocks):
    """The selector's output equals the best candidate + header bits."""
    selector = SelectiveBlockCompressor()
    for block in sample_blocks.values():
        best_bits = None
        for compressor in (ZeroBlockCompressor(), BDICompressor(),
                           BPCCompressor(), CPackCompressor()):
            candidate = compressor.compress(block)
            if candidate is not None:
                if best_bits is None or candidate.size_bits < best_bits:
                    best_bits = candidate.size_bits
        chosen = selector.compress(block)
        if best_bits is None:
            assert chosen.algorithm == "raw"
        else:
            assert chosen.size_bits == best_bits + selector.HEADER_BITS
