"""Property tests for the Deflate pipeline timing model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.units import PAGE_SIZE
from repro.compression.deflate import (
    DeflateCodec,
    DeflateTimingModel,
    IBMDeflateModel,
)
from repro.workloads.content import CONTENT_PROFILES, ContentSynthesizer


@pytest.fixture(scope="module")
def compressed_corpus():
    codec = DeflateCodec()
    pages = []
    for profile in ("graph", "canneal", "small"):
        synthesizer = ContentSynthesizer(profile, seed=8)
        pages += [codec.compress(synthesizer.page(v)) for v in range(3)]
    return pages


def test_half_page_never_exceeds_full_page(compressed_corpus):
    model = DeflateTimingModel()
    for page in compressed_corpus:
        half = model.decompress_latency_ns(page, PAGE_SIZE // 2)
        full = model.decompress_latency_ns(page)
        assert half <= full


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=64, max_value=PAGE_SIZE))
def test_decompress_latency_monotone_in_bytes_needed(bytes_needed):
    codec = DeflateCodec()
    model = DeflateTimingModel()
    page = codec.compress(ContentSynthesizer("graph", 9).page(1))
    smaller = model.decompress_latency_ns(page, bytes_needed // 2)
    larger = model.decompress_latency_ns(page, bytes_needed)
    assert smaller <= larger + 1e-9


def test_less_compressible_pages_compress_faster_but_larger():
    """Less LZ output to re-encode means shorter Huffman phases; the
    timing model must track per-page structure, not a constant."""
    codec = DeflateCodec()
    model = DeflateTimingModel()
    compressible = codec.compress(ContentSynthesizer("small", 10).page(0))
    dense = codec.compress(ContentSynthesizer("canneal", 10).page(0))
    assert compressible.size_bytes < dense.size_bytes
    assert model.compress_latency_ns(compressible) != \
        model.compress_latency_ns(dense)


def test_clock_scaling_is_inverse():
    codec = DeflateCodec()
    page = codec.compress(ContentSynthesizer("graph", 11).page(2))
    slow = DeflateTimingModel(clock_ghz=1.25)
    fast = DeflateTimingModel(clock_ghz=2.5)
    assert slow.decompress_latency_ns(page) == pytest.approx(
        2 * fast.decompress_latency_ns(page))


def test_throughput_and_latency_are_consistent(compressed_corpus):
    """Throughput (pipelined) is never worse than 1/latency (serial)."""
    model = DeflateTimingModel()
    for page in compressed_corpus:
        serial_gbps = page.original_size / model.compress_latency_ns(page)
        assert model.compress_throughput_gbps(page) >= serial_gbps - 1e-9


def test_ibm_model_latency_monotone_in_size():
    ibm = IBMDeflateModel()
    sizes = [512, 1024, 2048, 4096]
    latencies = [ibm.decompress_latency_ns(PAGE_SIZE, s) for s in sizes]
    assert latencies == sorted(latencies)
    assert latencies[0] > ibm.decompress_setup_ns  # setup dominates


def test_our_asic_beats_ibm_on_every_profile_half_page():
    codec = DeflateCodec()
    model = DeflateTimingModel()
    ibm = IBMDeflateModel()
    ibm_half = ibm.decompress_latency_ns(PAGE_SIZE, PAGE_SIZE // 2)
    for profile in CONTENT_PROFILES:
        page = codec.compress(ContentSynthesizer(profile, 12).page(0))
        ours = model.decompress_latency_ns(page, PAGE_SIZE // 2)
        assert ours < ibm_half / 3, profile
