"""Tests for the LZ77 stage."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.units import KIB
from repro.compression.lz import (
    MIN_MATCH,
    LZCompressor,
    LZConfig,
    LZToken,
)


def roundtrip(data: bytes, config: LZConfig = LZConfig()) -> bytes:
    lz = LZCompressor(config)
    return lz.decompress(lz.compress(data), len(data))


def test_empty_input():
    assert roundtrip(b"") == b""


def test_short_literal_only():
    data = b"abc"
    assert roundtrip(data) == data


def test_repeated_pattern_compresses():
    lz = LZCompressor()
    data = b"abcdefgh" * 512  # 4 KiB
    compressed = lz.compress(data)
    assert len(compressed) < len(data) // 10
    assert lz.decompress(compressed, len(data)) == data


def test_overlapping_match_rle_style():
    # 'aaaa...' forces offset-1 overlapping copies, the classic LZ edge case.
    data = b"a" * 1000
    assert roundtrip(data) == data


def test_long_literal_run_extension():
    # >15 literals exercises the extended literal-length encoding.
    import random
    rng = random.Random(9)
    data = bytes(rng.randrange(256) for _ in range(500))
    assert roundtrip(data) == data


def test_long_match_extension():
    # Match lengths >= 19 exercise the extended match-length encoding.
    data = b"X" * 3000 + b"unique-tail"
    assert roundtrip(data) == data


def test_window_limits_match_distance():
    """A repeat beyond the window must not be found; within, it must."""
    period = 512
    data = b"M" * 8 + bytes(range(256)) * ((period - 8) // 256 + 1)
    data = data[:period] + data[:period]
    small = LZCompressor(LZConfig(window_size=256, max_chain=512))
    large = LZCompressor(LZConfig(window_size=1 * KIB, max_chain=512))
    assert len(large.compress(data)) < len(small.compress(data))
    assert small.decompress(small.compress(data), len(data)) == data


def test_tokenize_structure():
    lz = LZCompressor()
    data = b"hello hello hello"
    tokens = lz.tokenize(data)
    assert tokens
    total = sum(len(t.literals) + t.match_length for t in tokens)
    assert total == len(data)
    assert any(t.match_length >= MIN_MATCH for t in tokens)


def test_token_validation():
    with pytest.raises(ValueError):
        LZToken(b"", match_length=2, match_offset=1)  # below MIN_MATCH
    with pytest.raises(ValueError):
        LZToken(b"", match_length=8, match_offset=0)  # match without offset


def test_config_validation():
    with pytest.raises(ValueError):
        LZConfig(window_size=0)
    with pytest.raises(ValueError):
        LZConfig(window_size=1 << 20)
    with pytest.raises(ValueError):
        LZConfig(max_chain=0)


def test_stats_accounting():
    lz = LZCompressor()
    data = b"pattern!" * 64
    stats = lz.stats(data)
    assert stats.input_bytes == len(data)
    assert stats.output_bytes == len(lz.compress(data))
    assert stats.literal_bytes + stats.matched_bytes == len(data)
    assert stats.match_count == len(stats.match_lengths)
    assert stats.token_count >= stats.match_count


def test_decompress_rejects_truncated_stream():
    lz = LZCompressor()
    compressed = lz.compress(b"hello world hello world")
    with pytest.raises(ValueError):
        lz.decompress(compressed[:2], 23)


def test_decompress_rejects_bad_offset():
    # Token: 0 literals, match len MIN_MATCH, offset 5 with empty history.
    stream = bytes([0x00, 0x05, 0x00])
    with pytest.raises(ValueError):
        LZCompressor().decompress(stream, 4)


@settings(max_examples=60, deadline=None)
@given(st.binary(min_size=0, max_size=2048))
def test_roundtrip_property_random(data):
    assert roundtrip(data) == data


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.sampled_from([b"alpha", b"beta", b"gamma-long-token", b"\x00\x00\x00\x00"]),
        min_size=0,
        max_size=200,
    )
)
def test_roundtrip_property_structured(parts):
    data = b"".join(parts)
    assert roundtrip(data) == data


@settings(max_examples=20, deadline=None)
@given(st.binary(min_size=0, max_size=1024),
       st.sampled_from([256, 512, 1024, 4096]))
def test_roundtrip_property_all_windows(data, window):
    config = LZConfig(window_size=window)
    assert roundtrip(data, config) == data


def test_window_cap_is_enforced_in_stream():
    """No serialized offset ever exceeds the configured window."""
    import random

    rng = random.Random(5)
    data = bytes(rng.choice(b"abcdef") for _ in range(4000))
    for window in (256, 1024):
        lz = LZCompressor(LZConfig(window_size=window))
        for token in lz.tokenize(data):
            if token.match_length:
                assert token.match_offset <= window


def test_incompressible_expansion_is_bounded():
    """Worst-case LZ expansion stays within ~7% (token bytes per 15
    literals plus run-length extensions)."""
    import random

    rng = random.Random(6)
    data = rng.randbytes(4096)
    lz = LZCompressor()
    compressed = lz.compress(data)
    assert len(compressed) <= len(data) * 1.07 + 16
    assert lz.decompress(compressed, len(data)) == data
