"""Tests for trace file I/O."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.simulator import Simulator
from repro.workloads.traceio import (
    load_trace,
    load_trace_text,
    save_trace,
    save_trace_text,
    workload_from_trace,
)

SAMPLE = [(0x1000, False), (0x1040, True), (0xFFFF_0000, False)]


def test_binary_roundtrip(tmp_path):
    path = tmp_path / "t.rtrc"
    save_trace(SAMPLE, path)
    assert load_trace(path) == SAMPLE


def test_text_roundtrip(tmp_path):
    path = tmp_path / "t.trace"
    save_trace_text(SAMPLE, path)
    assert load_trace_text(path) == SAMPLE


def test_binary_rejects_bad_magic(tmp_path):
    path = tmp_path / "bad.rtrc"
    path.write_bytes(b"NOPE" + bytes(12))
    with pytest.raises(ValueError, match="magic"):
        load_trace(path)


def test_binary_rejects_truncation(tmp_path):
    path = tmp_path / "t.rtrc"
    save_trace(SAMPLE, path)
    path.write_bytes(path.read_bytes()[:-4])
    with pytest.raises(ValueError, match="truncated"):
        load_trace(path)


def test_binary_rejects_short_file(tmp_path):
    path = tmp_path / "t.rtrc"
    path.write_bytes(b"RT")
    with pytest.raises(ValueError, match="too short"):
        load_trace(path)


def test_save_rejects_out_of_range_address(tmp_path):
    with pytest.raises(ValueError):
        save_trace([(1 << 62, False)], tmp_path / "x.rtrc")


def test_text_rejects_garbage(tmp_path):
    path = tmp_path / "bad.trace"
    path.write_text("R 0x10\nBANANA\n")
    with pytest.raises(ValueError, match="expected"):
        load_trace_text(path)


def test_text_skips_comments_and_blanks(tmp_path):
    path = tmp_path / "t.trace"
    path.write_text("# header\n\nR 0x40\nW 64\n")
    assert load_trace_text(path) == [(0x40, False), (64, True)]


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=(1 << 62) - 1),
                          st.booleans()), max_size=200))
def test_binary_roundtrip_property(tmp_path_factory, trace):
    path = tmp_path_factory.mktemp("traces") / "p.rtrc"
    save_trace(trace, path)
    assert load_trace(path) == trace


def test_workload_from_trace_runs_in_simulator(tmp_path):
    # A small synthetic trace over a 64-page region.
    trace = [((0x40_000 + (i * 37) % 64) << 12 | (i % 4096), i % 5 == 0)
             for i in range(3000)]
    path = tmp_path / "custom.rtrc"
    save_trace(trace, path)
    workload = workload_from_trace(path, name="custom")
    assert workload.name == "custom"
    assert workload.footprint_pages == 64
    result = Simulator(workload, controller="tmcc").run()
    assert result.accesses > 0


def test_workload_from_empty_trace_rejected(tmp_path):
    path = tmp_path / "empty.rtrc"
    save_trace([], path)
    with pytest.raises(ValueError, match="no accesses"):
        workload_from_trace(path)
