"""Tests for workload trace generators."""

import pytest

from repro.workloads.generators import (
    BANDWIDTH_KERNELS,
    SMALL_KERNELS,
    bandwidth_workload,
    canneal_workload,
    mcf_workload,
    omnetpp_workload,
    small_workload,
)
from repro.workloads.graphs import GRAPH_KERNELS, CSRGraph, graph_workload
from repro.workloads.suite import (
    PAPER_WORKLOAD_NAMES,
    paper_workloads,
    workload_by_name,
)


# ----------------------------------------------------------------------
# CSR graph
# ----------------------------------------------------------------------

def test_power_law_graph_shape():
    graph = CSRGraph.power_law(num_vertices=5000, avg_degree=8, seed=1)
    assert graph.num_vertices == 5000
    assert graph.num_edges > 5000
    assert (graph.offsets[1:] >= graph.offsets[:-1]).all()
    assert graph.edges.max() < 5000
    assert graph.edges.min() >= 0


def test_power_law_graph_is_skewed():
    graph = CSRGraph.power_law(num_vertices=5000, avg_degree=8, seed=2)
    degrees = graph.offsets[1:] - graph.offsets[:-1]
    assert degrees.max() > 10 * degrees.mean()


def test_graph_determinism():
    a = CSRGraph.power_law(1000, 8, seed=3)
    b = CSRGraph.power_law(1000, 8, seed=3)
    assert (a.offsets == b.offsets).all()
    assert (a.edges == b.edges).all()


def test_neighbors_view():
    graph = CSRGraph.power_law(100, 4, seed=4)
    neighbours = graph.neighbors(0)
    assert len(neighbours) == graph.offsets[1] - graph.offsets[0]


# ----------------------------------------------------------------------
# Graph kernels
# ----------------------------------------------------------------------

@pytest.mark.parametrize("kernel", sorted(GRAPH_KERNELS))
def test_each_graph_kernel_produces_a_trace(kernel):
    workload = graph_workload(kernel, num_vertices=3000, max_accesses=4000, seed=1)
    assert workload.name == kernel
    assert workload.access_count == 4000
    assert workload.footprint_pages > 10
    # Addresses stay inside the declared footprint.
    base = workload.base_vpn << 12
    end = base + workload.footprint_pages * 4096
    assert all(base <= addr < end for addr, _ in workload.trace)


def test_unknown_kernel_rejected():
    with pytest.raises(ValueError):
        graph_workload("sssp9000")


def test_graph_trace_determinism():
    a = graph_workload("bfs", num_vertices=2000, max_accesses=2000, seed=7)
    b = graph_workload("bfs", num_vertices=2000, max_accesses=2000, seed=7)
    assert a.trace == b.trace


def test_kernels_have_distinct_locality():
    """degCentr streams; shortestPath is irregular.  Measure distinct
    pages per access as a locality proxy."""
    streaming = graph_workload("degCentr", num_vertices=3000, max_accesses=6000)
    irregular = graph_workload("shortestPath", num_vertices=3000, max_accesses=6000)
    def pages_per_access(w):
        return len({a >> 12 for a, _ in w.trace}) / w.access_count
    assert pages_per_access(irregular) > pages_per_access(streaming)


def test_writes_present_in_kernels():
    workload = graph_workload("pageRank", num_vertices=2000, max_accesses=5000)
    assert 0.0 < workload.write_fraction() < 0.5


# ----------------------------------------------------------------------
# Non-graph generators
# ----------------------------------------------------------------------

def test_mcf_is_irregular_and_large():
    workload = mcf_workload(footprint_pages=4000, max_accesses=10_000)
    pages = {a >> 12 for a, _ in workload.trace}
    assert len(pages) > 800  # pointer chasing touches many pages


def test_omnetpp_has_hot_heap():
    workload = omnetpp_workload(footprint_pages=2000, max_accesses=10_000)
    counts = {}
    for address, _ in workload.trace:
        page = address >> 12
        counts[page] = counts.get(page, 0) + 1
    hottest = max(counts.values())
    assert hottest > 50  # heap pages are revisited constantly


def test_canneal_is_the_most_irregular():
    canneal = canneal_workload(footprint_pages=4000, max_accesses=10_000)
    omnetpp = omnetpp_workload(footprint_pages=4000, max_accesses=10_000)
    def distinct_pages(w):
        return len({a >> 12 for a, _ in w.trace})
    assert distinct_pages(canneal) > distinct_pages(omnetpp)
    assert canneal.compute_cycles_per_access < omnetpp.compute_cycles_per_access


@pytest.mark.parametrize("kernel", SMALL_KERNELS)
def test_small_workloads(kernel):
    workload = small_workload(kernel, footprint_pages=500, max_accesses=5000)
    assert workload.access_count == 5000
    assert workload.footprint_pages == 500
    # Small workloads fit their working set in few pages.
    assert len({a >> 12 for a, _ in workload.trace}) <= 500


@pytest.mark.parametrize("kernel", BANDWIDTH_KERNELS)
def test_bandwidth_workloads(kernel):
    workload = bandwidth_workload(kernel, footprint_pages=1000, max_accesses=5000)
    assert workload.access_count == 5000
    assert workload.compute_cycles_per_access <= 2.0  # bandwidth bound


def test_generators_reject_unknown_kernels():
    with pytest.raises(ValueError):
        small_workload("nope")
    with pytest.raises(ValueError):
        bandwidth_workload("nope")


# ----------------------------------------------------------------------
# Suite assembly
# ----------------------------------------------------------------------

def test_suite_names_match_paper():
    assert len(PAPER_WORKLOAD_NAMES) == 12
    assert set(GRAPH_KERNELS) < set(PAPER_WORKLOAD_NAMES)
    assert {"mcf", "omnetpp", "canneal"} < set(PAPER_WORKLOAD_NAMES)


def test_workload_by_name_scaling():
    small = workload_by_name("canneal", max_accesses=10_000, scale=0.1)
    assert small.access_count == 10_000 * 0.1
    with pytest.raises(ValueError):
        workload_by_name("doom")


def test_paper_workloads_subset():
    suite = paper_workloads(names=["kcore", "mcf"], max_accesses=3000, scale=0.05)
    assert set(suite) == {"kcore", "mcf"}
    for workload in suite.values():
        assert workload.access_count >= 1000


def test_touched_vpns_first_touch_order():
    workload = workload_by_name("omnetpp", max_accesses=2000, scale=0.05)
    vpns = workload.touched_vpns()
    assert len(vpns) == len(set(vpns))
    assert vpns[0] == workload.trace[0][0] >> 12


# ----------------------------------------------------------------------
# Workload record helpers
# ----------------------------------------------------------------------

def test_write_fraction_empty_trace():
    from repro.workloads.trace import Workload

    workload = Workload(name="empty", trace=[], footprint_pages=1,
                        content=lambda vpn: bytes(4096))
    assert workload.write_fraction() == 0.0
    assert workload.touched_vpns() == []
    assert workload.access_count == 0


def test_suite_determinism_across_builds():
    a = workload_by_name("bfs", max_accesses=3000, scale=0.05)
    b = workload_by_name("bfs", max_accesses=3000, scale=0.05)
    assert a.trace == b.trace
    assert a.footprint_pages == b.footprint_pages
    assert a.content(5) == b.content(5)


def test_different_seeds_give_different_traces():
    a = workload_by_name("bfs", max_accesses=3000, scale=0.05, seed=1)
    b = workload_by_name("bfs", max_accesses=3000, scale=0.05, seed=2)
    assert a.trace != b.trace
