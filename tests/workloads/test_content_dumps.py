"""Tests for content synthesis and the Figure 15 dump corpus."""

import zlib

import pytest

from repro.common.units import PAGE_SIZE
from repro.compression.block import SelectiveBlockCompressor
from repro.compression.deflate import DeflateCodec
from repro.workloads.content import CONTENT_PROFILES, ContentSynthesizer
from repro.workloads.dumps import DUMP_BENCHMARKS, dump_corpus, dump_pages


# ----------------------------------------------------------------------
# Content synthesizer
# ----------------------------------------------------------------------

def test_page_is_4k_and_deterministic():
    syn = ContentSynthesizer("graph", seed=1)
    page = syn.page(42)
    assert len(page) == PAGE_SIZE
    assert page == ContentSynthesizer("graph", seed=1).page(42)


def test_different_vpns_differ():
    syn = ContentSynthesizer("graph", seed=1)
    assert syn.page(1) != syn.page(2)


def test_different_seeds_differ():
    a = ContentSynthesizer("mcf", seed=1).page(0)
    b = ContentSynthesizer("mcf", seed=2).page(0)
    assert a != b


def test_unknown_profile_rejected():
    with pytest.raises(ValueError):
        ContentSynthesizer("exotic")


@pytest.mark.parametrize("profile", sorted(CONTENT_PROFILES))
def test_profiles_roundtrip_through_deflate(profile):
    codec = DeflateCodec()
    page = ContentSynthesizer(profile, seed=9).page(3)
    assert codec.decompress(codec.compress(page)) == page


def test_deflate_beats_block_level_on_every_profile():
    """The Figure 15 mechanism: page-scale redundancy that block-level
    compression cannot reach."""
    codec = DeflateCodec()
    blocks = SelectiveBlockCompressor()
    for profile in CONTENT_PROFILES:
        syn = ContentSynthesizer(profile, seed=5)
        pages = [syn.page(v) for v in range(4)]
        deflate_size = sum(codec.compressed_size(p) for p in pages)
        block_size = sum(blocks.compressed_page_size(p) for p in pages)
        assert deflate_size < block_size, profile


def test_graph_profile_hits_calibration_targets():
    """Graph pages: our Deflate ~3x, block-level ~1.2x, within 15% of gzip
    (paper: 3.0x Table IV, 1.51x geomean block, 12% below gzip)."""
    syn = ContentSynthesizer("graph", seed=3)
    pages = [syn.page(v) for v in range(8)]
    orig = len(pages) * PAGE_SIZE
    deflate_ratio = orig / sum(DeflateCodec().compressed_size(p) for p in pages)
    block_ratio = orig / sum(
        SelectiveBlockCompressor().compressed_page_size(p) for p in pages
    )
    gzip_ratio = orig / sum(len(zlib.compress(p, 6)) for p in pages)
    assert 2.4 <= deflate_ratio <= 4.0
    assert 1.05 <= block_ratio <= 1.5
    assert deflate_ratio > 0.8 * gzip_ratio


def test_canneal_is_least_compressible():
    ratios = {}
    for profile in ("graph", "canneal", "small"):
        syn = ContentSynthesizer(profile, seed=4)
        pages = [syn.page(v) for v in range(4)]
        codec = DeflateCodec()
        ratios[profile] = (len(pages) * PAGE_SIZE) / sum(
            codec.compressed_size(p) for p in pages
        )
    assert ratios["canneal"] < ratios["graph"] < ratios["small"]


# ----------------------------------------------------------------------
# Dump corpus
# ----------------------------------------------------------------------

def test_dump_pages_exclude_all_zero():
    for benchmark in ("pageRank", "canneal"):
        pages = dump_pages(benchmark, num_pages=10)
        assert len(pages) == 10
        assert all(any(p) for p in pages)


def test_dump_unknown_benchmark():
    with pytest.raises(ValueError):
        dump_pages("quake3")


def test_corpus_covers_all_benchmarks():
    corpus = dump_corpus(num_pages=4)
    assert set(corpus) == set(DUMP_BENCHMARKS)
    assert len(DUMP_BENCHMARKS) == 12  # twelve Figure 15 bars


def test_corpus_spans_cpp_and_java_suites():
    assert any(b.startswith("spark") for b in DUMP_BENCHMARKS)
    assert any(b.startswith("dacapo") for b in DUMP_BENCHMARKS)
    assert any(b.startswith("renaissance") for b in DUMP_BENCHMARKS)
    assert "mcf" in DUMP_BENCHMARKS and "canneal" in DUMP_BENCHMARKS
