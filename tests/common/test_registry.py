"""Unit tests for the decorator-based component registry."""

import pytest

from repro.common.registry import Registry


def test_bare_decorator_uses_name_attribute():
    registry = Registry("widget")

    @registry.register
    class Gear:
        name = "gear"

    assert "gear" in registry
    assert registry.get("gear") is Gear
    assert registry.names() == ["gear"]


def test_named_decorator_overrides_class_attribute():
    registry = Registry("widget")

    @registry.register(name="alias")
    class Gear:
        name = "gear"

    assert "alias" in registry
    assert "gear" not in registry


def test_missing_name_rejected():
    registry = Registry("widget")
    with pytest.raises(ValueError, match="name"):
        @registry.register
        class Nameless:
            pass


def test_duplicate_name_rejected():
    registry = Registry("widget")

    @registry.register
    class A:
        name = "x"

    with pytest.raises(ValueError, match="already registered"):
        @registry.register
        class B:
            name = "x"


def test_reregistering_same_class_is_idempotent():
    registry = Registry("widget")

    @registry.register
    class A:
        name = "x"

    registry.add("x", A)  # same object: no error
    assert len(registry) == 1


def test_unknown_name_lists_choices():
    registry = Registry("widget")

    @registry.register
    class A:
        name = "x"

    with pytest.raises(ValueError, match=r"unknown widget 'y'.*'x'"):
        registry.get("y")


def test_create_instantiates():
    registry = Registry("widget")

    @registry.register
    class A:
        name = "x"

        def __init__(self, value):
            self.value = value

    instance = registry.create("x", 7)
    assert isinstance(instance, A)
    assert instance.value == 7


def test_iteration_and_items_sorted():
    registry = Registry("widget")
    registry.add("b", object())
    registry.add("a", object())
    assert list(registry) == ["a", "b"]
    assert [k for k, _ in registry.items()] == ["a", "b"]


def test_builtin_controllers_registered():
    from repro.core import CONTROLLER_REGISTRY, available_controllers

    expected = {"uncompressed", "compresso", "compresso_llc_victim",
                "osinspired", "osinspired_fastml2", "tmcc"}
    assert set(available_controllers()) == expected
    assert set(CONTROLLER_REGISTRY.names()) == expected


def test_prefetcher_and_recency_registries():
    from repro.cache.prefetch import PREFETCHER_REGISTRY
    from repro.mc.recency import RECENCY_REGISTRY

    assert set(PREFETCHER_REGISTRY.names()) >= {"next_line", "stride"}
    assert "sampled_lru" in RECENCY_REGISTRY
