"""Unit tests for address arithmetic helpers."""

import pytest

from repro.common import units


def test_constants_are_consistent():
    assert units.PAGE_SIZE == 4096
    assert units.BLOCK_SIZE == 64
    assert units.BLOCKS_PER_PAGE == 64
    assert units.PTES_PER_PTB == 8
    assert units.PAGE_SIZE == units.BLOCKS_PER_PAGE * units.BLOCK_SIZE


def test_align_down_basic():
    assert units.align_down(0x1234, 0x1000) == 0x1000
    assert units.align_down(0x1000, 0x1000) == 0x1000
    assert units.align_down(0, 64) == 0


def test_align_up_basic():
    assert units.align_up(0x1234, 0x1000) == 0x2000
    assert units.align_up(0x1000, 0x1000) == 0x1000
    assert units.align_up(1, 64) == 64


def test_align_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        units.align_down(100, 3)
    with pytest.raises(ValueError):
        units.align_up(100, 0)
    with pytest.raises(ValueError):
        units.is_aligned(100, 6)


def test_is_aligned():
    assert units.is_aligned(0x2000, 0x1000)
    assert not units.is_aligned(0x2040, 0x1000)
    assert units.is_aligned(0, 64)


def test_page_and_block_numbers():
    assert units.page_of(0) == 0
    assert units.page_of(4095) == 0
    assert units.page_of(4096) == 1
    assert units.block_of(63) == 0
    assert units.block_of(64) == 1


def test_page_and_block_bases():
    assert units.page_base(0x1FFF) == 0x1000
    assert units.block_base(0x1C7) == 0x1C0


def test_block_index_in_page():
    assert units.block_index_in_page(0x1000) == 0
    assert units.block_index_in_page(0x1040) == 1
    assert units.block_index_in_page(0x1FC0) == 63


def test_is_power_of_two():
    assert units.is_power_of_two(1)
    assert units.is_power_of_two(4096)
    assert not units.is_power_of_two(0)
    assert not units.is_power_of_two(96)
