"""Unit tests for the deterministic RNG wrapper."""

from repro.common.rng import DeterministicRNG


def test_same_seed_same_stream():
    a = DeterministicRNG(42)
    b = DeterministicRNG(42)
    assert [a.randint(0, 1000) for _ in range(20)] == [
        b.randint(0, 1000) for _ in range(20)
    ]


def test_different_seeds_diverge():
    a = DeterministicRNG(1)
    b = DeterministicRNG(2)
    assert [a.randint(0, 10**9) for _ in range(5)] != [
        b.randint(0, 10**9) for _ in range(5)
    ]


def test_fork_is_deterministic_and_independent():
    parent_a = DeterministicRNG(7)
    parent_b = DeterministicRNG(7)
    child_a = parent_a.fork(1)
    child_b = parent_b.fork(1)
    assert child_a.randint(0, 10**9) == child_b.randint(0, 10**9)
    # Consuming the child does not perturb the parent stream.
    assert parent_a.randint(0, 10**9) == parent_b.randint(0, 10**9)


def test_chance_extremes():
    rng = DeterministicRNG(3)
    assert all(rng.chance(1.0) for _ in range(10))
    assert not any(rng.chance(0.0) for _ in range(10))


def test_bytes_length_and_determinism():
    assert DeterministicRNG(5).bytes(32) == DeterministicRNG(5).bytes(32)
    assert len(DeterministicRNG(5).bytes(100)) == 100


def test_zipf_index_in_range_and_skewed():
    rng = DeterministicRNG(11)
    samples = [rng.zipf_index(1000) for _ in range(5000)]
    assert all(0 <= s < 1000 for s in samples)
    # Zipf: the head must be far more popular than the tail.
    head = sum(1 for s in samples if s < 10)
    tail = sum(1 for s in samples if s >= 990)
    assert head > tail * 3


def test_zipf_index_single_element():
    rng = DeterministicRNG(1)
    assert rng.zipf_index(1) == 0
