"""Unit and property tests for bit-field helpers and bitstream I/O."""

import pytest
from hypothesis import given, strategies as st

from repro.common.bits import (
    BitReader,
    BitWriter,
    bit_length_of_count,
    extract_bits,
    insert_bits,
    mask,
)


def test_mask():
    assert mask(0) == 0
    assert mask(1) == 1
    assert mask(8) == 0xFF
    assert mask(40) == (1 << 40) - 1


def test_mask_rejects_negative():
    with pytest.raises(ValueError):
        mask(-1)


def test_extract_bits():
    value = 0b1011_0110
    assert extract_bits(value, 0, 4) == 0b0110
    assert extract_bits(value, 4, 4) == 0b1011
    assert extract_bits(value, 1, 3) == 0b011


def test_insert_bits():
    assert insert_bits(0, 4, 4, 0xA) == 0xA0
    assert insert_bits(0xFF, 0, 4, 0) == 0xF0
    with pytest.raises(ValueError):
        insert_bits(0, 0, 4, 16)


def test_bit_length_of_count():
    assert bit_length_of_count(1) == 1
    assert bit_length_of_count(2) == 1
    assert bit_length_of_count(3) == 2
    assert bit_length_of_count(256) == 8
    with pytest.raises(ValueError):
        bit_length_of_count(0)


def test_writer_reader_roundtrip_simple():
    writer = BitWriter()
    writer.write(0b101, 3)
    writer.write(0xAB, 8)
    writer.write(1, 1)
    assert writer.bit_length == 12
    reader = BitReader(writer.getvalue())
    assert reader.read(3) == 0b101
    assert reader.read(8) == 0xAB
    assert reader.read(1) == 1


def test_writer_rejects_overflow_value():
    writer = BitWriter()
    with pytest.raises(ValueError):
        writer.write(4, 2)
    with pytest.raises(ValueError):
        writer.write(-1, 4)


def test_reader_eof():
    reader = BitReader(b"\xff")
    reader.read(8)
    with pytest.raises(EOFError):
        reader.read(1)


def test_reader_peek_does_not_consume():
    writer = BitWriter()
    writer.write(0b1100, 4)
    reader = BitReader(writer.getvalue())
    assert reader.peek(4) == 0b1100
    assert reader.position == 0
    assert reader.read(4) == 0b1100


def test_reader_peek_pads_past_end_with_zeros():
    reader = BitReader(b"\xf0")
    reader.skip(4)
    assert reader.peek(8) == 0b0000_0000
    reader = BitReader(b"\xff")
    reader.skip(4)
    assert reader.peek(8) == 0b1111_0000


def test_reader_skip_and_remaining():
    reader = BitReader(b"\x00\x00")
    assert reader.bits_remaining == 16
    reader.skip(5)
    assert reader.bits_remaining == 11
    with pytest.raises(EOFError):
        reader.skip(12)


def test_write_bytes():
    writer = BitWriter()
    writer.write(1, 1)
    writer.write_bytes(b"\xde\xad")
    reader = BitReader(writer.getvalue())
    assert reader.read(1) == 1
    assert reader.read(8) == 0xDE
    assert reader.read(8) == 0xAD


@given(st.lists(st.tuples(st.integers(min_value=1, max_value=33), st.integers(min_value=0)),
                min_size=1, max_size=64))
def test_writer_reader_roundtrip_property(fields):
    """Whatever sequence of (width, value) we write, we read it back."""
    writer = BitWriter()
    normalized = []
    for width, raw in fields:
        value = raw & mask(width)
        normalized.append((width, value))
        writer.write(value, width)
    reader = BitReader(writer.getvalue())
    for width, value in normalized:
        assert reader.read(width) == value


@given(st.integers(min_value=0, max_value=(1 << 64) - 1),
       st.integers(min_value=0, max_value=56),
       st.integers(min_value=1, max_value=8))
def test_extract_insert_inverse_property(value, low, width):
    field = extract_bits(value, low, width)
    assert insert_bits(value, low, width, field) == value
