"""Unit tests for statistics containers."""

import math

import pytest

from repro.common.stats import Counter, Histogram, RatioStat, StatGroup, geomean, mean


def test_mean():
    assert mean([]) == 0.0
    assert mean([2, 4]) == 3.0


def test_geomean():
    assert geomean([]) == 0.0
    assert math.isclose(geomean([1, 4]), 2.0)
    assert math.isclose(geomean([3.0, 3.0, 3.0]), 3.0)


def test_geomean_skips_zeros_with_warning():
    with pytest.warns(UserWarning, match="zero value"):
        assert math.isclose(geomean([1.0, 4.0, 0.0]), 2.0)
    with pytest.warns(UserWarning):
        assert geomean([0.0, 0.0]) == 0.0


def test_geomean_rejects_negative():
    with pytest.raises(ValueError):
        geomean([1.0, -2.0])


def test_counter():
    counter = Counter("events")
    counter.increment()
    counter.increment(4)
    assert counter.value == 5
    counter.reset()
    assert counter.value == 0


def test_ratio_stat():
    ratio = RatioStat("tlb")
    for hit in (True, True, False, True):
        ratio.record(hit)
    assert ratio.hits == 3
    assert ratio.misses == 1
    assert ratio.hit_rate == 0.75
    assert math.isclose(ratio.miss_rate, 0.25)


def test_ratio_stat_empty():
    ratio = RatioStat("empty")
    assert ratio.hit_rate == 0.0
    assert ratio.miss_rate == 0.0


def test_histogram_basic():
    histogram = Histogram("latency")
    for value in (10, 20, 30, 40):
        histogram.record(value)
    assert histogram.count == 4
    assert histogram.total == 100
    assert histogram.mean == 25
    assert histogram.percentile(0.5) == 20
    assert histogram.percentile(1.0) == 40
    assert histogram.percentile(0.0) == 10


def test_histogram_percentile_validation():
    histogram = Histogram("x")
    histogram.record(1)
    with pytest.raises(ValueError):
        histogram.percentile(1.5)
    with pytest.raises(ValueError):
        histogram.percentile(-0.01)


def test_histogram_percentile_empty():
    histogram = Histogram("empty")
    assert histogram.percentile(0.0) == 0.0
    assert histogram.percentile(0.5) == 0.0
    assert histogram.percentile(1.0) == 0.0
    assert histogram.mean == 0.0
    # A bad fraction is a caller bug -- it raises even with no samples.
    with pytest.raises(ValueError):
        histogram.percentile(2.0)


def test_histogram_percentile_single_sample():
    histogram = Histogram("one")
    histogram.record(42.0)
    for fraction in (0.0, 0.25, 0.5, 0.99, 1.0):
        assert histogram.percentile(fraction) == 42.0


def test_histogram_percentile_two_samples():
    histogram = Histogram("two")
    histogram.record(10.0)
    histogram.record(20.0)
    assert histogram.percentile(0.0) == 10.0
    assert histogram.percentile(0.5) == 10.0
    assert histogram.percentile(0.51) == 20.0
    assert histogram.percentile(1.0) == 20.0


def test_stat_group_registry_and_dump():
    group = StatGroup("mc")
    group.counter("reads").increment(7)
    group.ratio("cte").record(True)
    group.ratio("cte").record(False)
    group.histogram("lat").record(50)
    flattened = group.as_dict()
    assert flattened["reads"] == 7
    assert flattened["cte.hits"] == 1
    assert flattened["cte.total"] == 2
    assert flattened["cte.hit_rate"] == 0.5
    assert flattened["lat.mean"] == 50
    # Registry returns the same object on re-lookup.
    assert group.counter("reads").value == 7
    group.reset()
    assert group.counter("reads").value == 0
