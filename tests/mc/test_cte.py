"""Tests for CTE layouts."""

import pytest
from hypothesis import given, strategies as st

from repro.common.units import BLOCKS_PER_PAGE
from repro.mc.cte import (
    CTE_SIZE_BLOCKLEVEL,
    CTE_SIZE_PAGE,
    CompressoCTE,
    PageCTE,
)


def test_size_constants_match_paper():
    """TMCC CTE is 8 B like a PTE; Compresso's is 8x that (Section III)."""
    assert CTE_SIZE_PAGE == 8
    assert CTE_SIZE_BLOCKLEVEL == 64
    assert CTE_SIZE_BLOCKLEVEL == 8 * CTE_SIZE_PAGE


def test_page_cte_pack_unpack_ml2():
    """ML2 pages carry the compressed size in the 32-bit union field."""
    cte = PageCTE(dram_page=0x123456, in_ml2=True, is_incompressible=False,
                  compressed_size=1536)
    restored = PageCTE.unpack(cte.pack())
    assert restored.dram_page == 0x123456
    assert restored.in_ml2
    assert not restored.is_incompressible
    assert restored.compressed_size == 1536
    assert restored.ptb_pair_vector == 0


def test_page_cte_pack_unpack_ml1():
    """ML1 pages carry the compressed-PTB pair vector instead."""
    cte = PageCTE(dram_page=0x777, in_ml2=False, is_incompressible=True,
                  ptb_pair_vector=0xDEADBEEF)
    restored = PageCTE.unpack(cte.pack())
    assert restored.dram_page == 0x777
    assert not restored.in_ml2
    assert restored.is_incompressible
    assert restored.ptb_pair_vector == 0xDEADBEEF
    assert restored.compressed_size == 0


def test_page_cte_fits_64_bits():
    cte = PageCTE(dram_page=(1 << 28) - 1, in_ml2=True, is_incompressible=True,
                  compressed_size=4096, ptb_pair_vector=(1 << 32) - 1)
    assert cte.pack() < (1 << 64)


def test_ptb_pair_vector_covers_pairs():
    cte = PageCTE()
    cte.set_block_pair_compressed(10, True)
    # Both blocks of the pair (10, 11) read as compressed.
    assert cte.block_is_ptb_compressed(10)
    assert cte.block_is_ptb_compressed(11)
    assert not cte.block_is_ptb_compressed(12)
    cte.set_block_pair_compressed(11, False)
    assert not cte.block_is_ptb_compressed(10)


def test_ptb_pair_vector_bounds():
    cte = PageCTE()
    with pytest.raises(ValueError):
        cte.block_is_ptb_compressed(64)
    with pytest.raises(ValueError):
        cte.set_block_pair_compressed(-1, True)


@given(st.integers(min_value=0, max_value=BLOCKS_PER_PAGE - 1))
def test_ptb_pair_vector_property(block):
    cte = PageCTE()
    cte.set_block_pair_compressed(block, True)
    partner = block ^ 1
    assert cte.block_is_ptb_compressed(partner)


def test_compresso_cte_default_uncompressed():
    cte = CompressoCTE()
    assert cte.compressed_page_bytes() == 4096
    assert cte.chunks_needed() == 8


def test_compresso_cte_compressed_sizes():
    cte = CompressoCTE(block_sizes=[16] * BLOCKS_PER_PAGE)
    assert cte.compressed_page_bytes() == 1024
    assert cte.chunks_needed() == 2


def test_compresso_block_location():
    cte = CompressoCTE(chunks=[7, 9], block_sizes=[16] * BLOCKS_PER_PAGE)
    chunk, offset = cte.block_location(0)
    assert (chunk, offset) == (7, 0)
    chunk, offset = cte.block_location(32)  # 32 * 16 = 512 -> second chunk
    assert (chunk, offset) == (9, 0)
    chunk, offset = cte.block_location(33)
    assert (chunk, offset) == (9, 16)


def test_compresso_block_location_edge_cases():
    cte = CompressoCTE()
    assert cte.block_location(0) is None  # no chunks allocated yet
    with pytest.raises(ValueError):
        cte.block_location(99)
    short = CompressoCTE(chunks=[1], block_sizes=[64] * BLOCKS_PER_PAGE)
    assert short.block_location(63) is None  # block falls past chunk list
