"""Tests for the recency list and migration buffer."""

import pytest

from repro.common.rng import DeterministicRNG
from repro.mc.migration import MigrationBuffer
from repro.mc.recency import RecencyList


# ----------------------------------------------------------------------
# Recency list
# ----------------------------------------------------------------------

def test_push_and_evict_order():
    rl = RecencyList(DeterministicRNG(1))
    for ppn in (1, 2, 3):
        rl.push_hot(ppn)
    assert rl.evict_coldest() == 1
    assert rl.evict_coldest() == 2
    assert len(rl) == 1


def test_push_existing_moves_to_hot_end():
    rl = RecencyList(DeterministicRNG(1))
    for ppn in (1, 2, 3):
        rl.push_hot(ppn)
    rl.push_hot(1)
    assert rl.evict_coldest() == 2


def test_evict_empty_returns_none():
    assert RecencyList(DeterministicRNG(1)).evict_coldest() is None


def test_sampling_rate_about_one_percent():
    rl = RecencyList(DeterministicRNG(2), sample_probability=0.01)
    rl.push_hot(7)
    sampled = sum(rl.on_access(7) for _ in range(20_000))
    assert 100 <= sampled <= 320  # ~200 expected


def test_on_access_untracked_page_is_noop():
    rl = RecencyList(DeterministicRNG(3), sample_probability=1.0)
    assert not rl.on_access(42)


def test_sampled_access_refreshes_recency():
    rl = RecencyList(DeterministicRNG(4), sample_probability=1.0)
    rl.push_hot(1)
    rl.push_hot(2)
    assert rl.on_access(1)
    assert rl.evict_coldest() == 2


def test_remove_incompressible():
    rl = RecencyList(DeterministicRNG(5))
    rl.push_hot(9)
    rl.remove(9)
    assert 9 not in rl
    rl.remove(9)  # idempotent


def test_readd_after_writeback_probability():
    rl = RecencyList(DeterministicRNG(6), sample_probability=0.01)
    readds = 0
    for _ in range(20_000):
        if rl.maybe_readd_after_writeback(11):
            readds += 1
            rl.remove(11)
    assert 100 <= readds <= 320


def test_readd_noop_when_present():
    rl = RecencyList(DeterministicRNG(7), sample_probability=1.0)
    rl.push_hot(5)
    assert not rl.maybe_readd_after_writeback(5)


def test_overhead_accounting():
    rl = RecencyList(DeterministicRNG(8))
    for ppn in range(1000):
        rl.push_hot(ppn)
    assert rl.overhead_bytes() == 1000 * RecencyList.ELEMENT_BYTES


def test_sample_probability_validation():
    with pytest.raises(ValueError):
        RecencyList(DeterministicRNG(9), sample_probability=1.5)


# ----------------------------------------------------------------------
# Migration buffer
# ----------------------------------------------------------------------

def test_no_stall_when_entries_free():
    buffer = MigrationBuffer(entries=2)
    assert buffer.acquire(now_ns=0.0, duration_ns=100.0) == 0.0
    assert buffer.acquire(now_ns=0.0, duration_ns=100.0) == 0.0
    assert buffer.occupancy(0.0) == 2


def test_stall_when_full():
    buffer = MigrationBuffer(entries=1)
    buffer.acquire(0.0, 100.0)
    stall = buffer.acquire(10.0, 50.0)
    assert stall == pytest.approx(90.0)
    assert buffer.stalls.value == 1
    assert buffer.stall_ns.mean == pytest.approx(90.0)


def test_entries_release_over_time():
    buffer = MigrationBuffer(entries=1)
    buffer.acquire(0.0, 100.0)
    assert buffer.occupancy(50.0) == 1
    assert buffer.occupancy(150.0) == 0
    assert buffer.acquire(150.0, 10.0) == 0.0


def test_paper_default_is_eight_entries():
    assert MigrationBuffer().entries == 8


def test_validation():
    with pytest.raises(ValueError):
        MigrationBuffer(entries=0)
    with pytest.raises(ValueError):
        MigrationBuffer().acquire(0.0, -1.0)


def test_migration_buffer_heap_order_under_mixed_durations():
    """Entries free in completion order, not insertion order."""
    buffer = MigrationBuffer(entries=2)
    buffer.acquire(0.0, 1000.0)   # frees at 1000
    buffer.acquire(0.0, 100.0)    # frees at 100
    # Third request at t=50 waits for the *earliest* completion (t=100).
    stall = buffer.acquire(50.0, 10.0)
    assert stall == pytest.approx(50.0)


def test_recency_list_len_and_contains_protocol():
    rl = RecencyList(DeterministicRNG(13))
    assert len(rl) == 0
    rl.push_hot(4)
    assert 4 in rl and 5 not in rl
    assert len(rl) == 1
