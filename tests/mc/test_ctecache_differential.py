"""Differential tests: columnar CTE cache vs the OrderedDict reference.

`CTECache` keeps its CTE-block recency in an `IntLRU`;
`ReferenceCTECache` is the original `OrderedDict`.  Random operation
sequences through both must agree on hits, victim block ids (the value
`fill` returns feeds victim-spill accounting in the MC), stats, and
occupancy -- at both the TMCC (8 B) and Compresso (64 B) CTE grains.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.units import KIB
from repro.mc.ctecache import CTECache, ReferenceCTECache

# Two blocks' worth of capacity at 1 KiB keeps evictions constant.
SIZE_BYTES = 1 * KIB

ppns = st.integers(min_value=0, max_value=400)

operation = st.one_of(
    st.tuples(st.just("lookup"), ppns),
    st.tuples(st.just("contains"), ppns),
    st.tuples(st.just("fill"), ppns),
    st.tuples(st.just("invalidate_page"), ppns),
    st.tuples(st.just("flush")),
)


def apply(cache, op):
    if op[0] == "lookup":
        return cache.lookup(op[1])
    if op[0] == "contains":
        return cache.contains(op[1])
    if op[0] == "fill":
        return cache.fill(op[1])
    if op[0] == "invalidate_page":
        return cache.invalidate_page(op[1])
    return cache.flush()


@pytest.mark.parametrize("cte_size", [8, 64])  # TMCC / Compresso grains
@settings(max_examples=150, deadline=None)
@given(ops=st.lists(operation, max_size=120))
def test_ctecache_matches_reference(cte_size, ops):
    columnar = CTECache(size_bytes=SIZE_BYTES, cte_size=cte_size, name="dut")
    reference = ReferenceCTECache(size_bytes=SIZE_BYTES, cte_size=cte_size,
                                  name="dut")
    assert columnar.pages_per_block == reference.pages_per_block
    assert columnar.reach_pages == reference.reach_pages
    for op in ops:
        assert apply(columnar, op) == apply(reference, op), op
        assert columnar.occupancy_blocks == reference.occupancy_blocks
        assert columnar.stats.total == reference.stats.total
        assert columnar.stats.hits == reference.stats.hits
    # Drain by filling fresh blocks: victims must come out in the same
    # (LRU) order from both implementations.
    per_block = columnar.pages_per_block
    for step in range(columnar.capacity_blocks):
        probe = (10_000 + step) * per_block
        assert apply(columnar, ("fill", probe)) \
            == apply(reference, ("fill", probe))
