"""Tests for the CTE cache and its translation reach."""

import pytest

from repro.common.units import KIB
from repro.mc.ctecache import CTECache


def test_reach_matches_table3():
    """TMCC: 64 KB cache, 32 KB reach per block -> 8K pages.
    Compresso: 128 KB cache, 4 KB reach per block -> 2K pages."""
    tmcc = CTECache(size_bytes=64 * KIB, cte_size=8)
    compresso = CTECache(size_bytes=128 * KIB, cte_size=64)
    assert tmcc.pages_per_block == 8
    assert compresso.pages_per_block == 1
    assert tmcc.reach_pages == 8192
    assert compresso.reach_pages == 2048
    assert tmcc.reach_pages == 4 * compresso.reach_pages


def test_page_level_spatial_locality():
    """Adjacent pages share a CTE block at page-level granularity."""
    cache = CTECache(cte_size=8)
    cache.fill(100)
    for neighbour in range(96, 104):  # same 8-page group
        assert cache.contains(neighbour)
    assert not cache.contains(104)


def test_block_level_has_no_such_locality():
    cache = CTECache(cte_size=64)
    cache.fill(100)
    assert cache.contains(100)
    assert not cache.contains(101)


def test_lookup_records_stats():
    cache = CTECache()
    assert not cache.lookup(5)
    cache.fill(5)
    assert cache.lookup(5)
    assert cache.stats.total == 2
    assert cache.stats.hits == 1


def test_lru_eviction():
    cache = CTECache(size_bytes=2 * 64, cte_size=64)  # 2 blocks
    cache.fill(0)
    cache.fill(1)
    cache.lookup(0)
    cache.fill(2)  # evicts 1
    assert cache.contains(0)
    assert not cache.contains(1)


def test_invalidate_and_flush():
    cache = CTECache()
    cache.fill(9)
    cache.invalidate_page(9)
    assert not cache.contains(9)
    cache.fill(10)
    cache.flush()
    assert cache.occupancy_blocks == 0


def test_validation():
    with pytest.raises(ValueError):
        CTECache(cte_size=7)
    with pytest.raises(ValueError):
        CTECache(size_bytes=32)


def test_quadrupling_cache_helps_less_than_page_level():
    """Section IV's point: page-level reach beats 4x capacity.

    A working set of 6000 pages thrashes a 2K-reach block-level cache,
    still exceeds the 4x (8K-reach... at 128KB->2K blocks) -- verify the
    orderings hold for the actual reaches.
    """
    base = CTECache(size_bytes=64 * KIB, cte_size=64)       # 1K pages
    big = CTECache(size_bytes=256 * KIB, cte_size=64)       # 4K pages
    page_level = CTECache(size_bytes=64 * KIB, cte_size=8)  # 8K pages
    assert base.reach_pages == 1024
    assert big.reach_pages == 4096
    assert page_level.reach_pages == 8192
    assert page_level.reach_pages > big.reach_pages > base.reach_pages
