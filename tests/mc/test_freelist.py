"""Tests for ML1/ML2 free lists and super-chunk carving."""

import pytest

from repro.common.errors import ModelInvariantError
from repro.mc.freelist import (
    ML1FreeList,
    ML2FreeLists,
    superchunk_geometry,
)


# ----------------------------------------------------------------------
# ML1
# ----------------------------------------------------------------------

def test_ml1_push_pop_lifo():
    ml1 = ML1FreeList()
    ml1.push(1)
    ml1.push(2)
    assert ml1.pop() == 2
    assert ml1.pop() == 1
    assert ml1.pop() is None


def test_ml1_pop_many_all_or_nothing():
    ml1 = ML1FreeList()
    ml1.push_many([1, 2])
    assert ml1.pop_many(3) is None
    assert ml1.count == 2
    chunks = ml1.pop_many(2)
    assert sorted(chunks) == [1, 2]
    assert ml1.count == 0


# ----------------------------------------------------------------------
# Super-chunk geometry
# ----------------------------------------------------------------------

def test_geometry_exact_divisors():
    assert superchunk_geometry(1024) == (1, 4)
    assert superchunk_geometry(2048) == (1, 2)
    assert superchunk_geometry(4096) == (1, 1)


def test_geometry_1536_matches_figure3():
    """Figure 3c: 1.5 KB sub-chunks carve fragmentation-free from
    3 chunks -> 8 sub-chunks (3 * 4096 = 8 * 1536 exactly)."""
    m, n = superchunk_geometry(1536)
    assert (m, n) == (3, 8)
    assert m * 4096 == n * 1536


def test_geometry_minimizes_waste():
    m, n = superchunk_geometry(2560)
    assert (m * 4096) % 2560 == 0  # 5 chunks = 8 x 2560 exactly
    assert m == 5 and n == 8


def test_geometry_validation():
    with pytest.raises(ValueError):
        superchunk_geometry(0)
    with pytest.raises(ValueError):
        superchunk_geometry(8192)


# ----------------------------------------------------------------------
# ML2 free lists
# ----------------------------------------------------------------------

def make_ml1(chunks=64):
    ml1 = ML1FreeList()
    ml1.push_many(range(chunks))
    return ml1


def test_alloc_grows_from_ml1():
    ml1 = make_ml1()
    ml2 = ML2FreeLists()
    before = ml1.count
    sub = ml2.alloc(1500, ml1)
    assert sub is not None
    assert sub.size == 1536
    assert ml1.count == before - 3  # 1536-class super-chunk uses 3 chunks


def test_alloc_reuses_superchunk():
    ml1 = make_ml1()
    ml2 = ML2FreeLists()
    first = ml2.alloc(1500, ml1)
    after_first = ml1.count
    second = ml2.alloc(1400, ml1)
    assert ml1.count == after_first  # no new super-chunk needed
    assert first.superchunk is second.superchunk
    assert first.slot != second.slot


def test_alloc_fails_when_ml1_empty():
    ml1 = ML1FreeList()
    ml2 = ML2FreeLists()
    assert ml2.alloc(1000, ml1) is None


def test_free_returns_chunks_when_superchunk_drains():
    ml1 = make_ml1(chunks=3)
    ml2 = ML2FreeLists()
    subs = [ml2.alloc(1536, ml1) for _ in range(8)]  # fills the super-chunk
    assert all(subs)
    assert ml1.count == 0
    for sub in subs:
        ml2.free(sub, ml1)
    assert ml1.count == 3  # dismantled back into ML1


def test_free_pushes_superchunk_back_on_list():
    ml1 = make_ml1(chunks=3)
    ml2 = ML2FreeLists()
    subs = [ml2.alloc(1536, ml1) for _ in range(8)]
    ml2.free(subs[0], ml1)  # 0 free -> 1 free: back on the list
    again = ml2.alloc(1536, ml1)
    assert again is not None
    assert again.superchunk is subs[0].superchunk


def test_double_free_rejected():
    ml1 = make_ml1()
    ml2 = ML2FreeLists()
    sub = ml2.alloc(512, ml1)
    ml2.free(sub, ml1)
    with pytest.raises(ModelInvariantError):
        ml2.free(sub, ml1)


def test_double_free_message_names_slot_class_and_address():
    """The error pinpoints the duplicate free: slot, size class, and the
    sub-chunk's DRAM address derived from the super-chunk's origin."""
    ml1 = make_ml1()
    ml2 = ML2FreeLists()
    sub = ml2.alloc(512, ml1)
    keeper = ml2.alloc(512, ml1)  # keeps the super-chunk from dismantling
    assert keeper.superchunk is sub.superchunk
    ml2.free(sub, ml1)
    with pytest.raises(ModelInvariantError) as excinfo:
        ml2.free(sub, ml1)
    message = str(excinfo.value)
    assert "double free" in message
    assert f"slot {sub.slot}" in message
    assert "size class 512 B" in message
    origin = sub.superchunk.origin_chunk
    assert f"chunk {origin}" in message
    assert f"address {origin * 4096 + sub.slot * 512:#x}" in message


def test_free_into_dismantled_superchunk_message():
    """Freeing a sub-chunk whose super-chunk already drained back into
    ML1 is a model invariant violation, named as such."""
    ml1 = make_ml1(chunks=3)
    ml2 = ML2FreeLists()
    subs = [ml2.alloc(1536, ml1) for _ in range(8)]
    for sub in subs:
        ml2.free(sub, ml1)
    assert ml1.count == 3  # dismantled
    with pytest.raises(ModelInvariantError) as excinfo:
        ml2.free(subs[3], ml1)
    message = str(excinfo.value)
    assert "dismantled" in message
    assert f"slot {subs[3].slot}" in message
    assert "size class 1536 B" in message
    assert f"chunk {subs[3].superchunk.origin_chunk}" in message


def test_class_for_selection():
    ml2 = ML2FreeLists()
    assert ml2.class_for(1) == 256
    assert ml2.class_for(256) == 256
    assert ml2.class_for(257) == 512
    assert ml2.class_for(4096) == 4096
    with pytest.raises(ValueError):
        ml2.class_for(5000)


def test_custom_size_classes():
    ml2 = ML2FreeLists(size_classes=[1024, 2048])
    assert ml2.class_for(900) == 1024
    ml1 = make_ml1()
    sub = ml2.alloc(1500, ml1)
    assert sub.size == 2048


def test_free_subchunks_accounting():
    ml1 = make_ml1()
    ml2 = ML2FreeLists()
    ml2.alloc(1536, ml1)
    assert ml2.free_subchunks(1536) == 7


def test_invalid_size_classes():
    with pytest.raises(ValueError):
        ML2FreeLists(size_classes=[0, 512])
