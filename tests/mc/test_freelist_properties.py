"""Property tests: chunk conservation in the ML1/ML2 free lists.

The single invariant everything hangs on: chunks are never created,
destroyed, or double-allocated -- whatever sequence of sub-chunk
allocations and frees occurs, every chunk is either in ML1's free list,
part of a live super-chunk, or held by an allocated ML1 page.
"""

from hypothesis import given, settings, strategies as st

from repro.mc.freelist import ML1FreeList, ML2FreeLists, superchunk_geometry


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.booleans(),
                          st.integers(min_value=1, max_value=4096)),
                min_size=1, max_size=120))
def test_chunk_conservation(operations):
    """Random alloc/free interleavings conserve the chunk population."""
    total_chunks = 64
    ml1 = ML1FreeList()
    ml1.push_many(range(total_chunks))
    ml2 = ML2FreeLists()
    live = []

    for is_alloc, size in operations:
        if is_alloc or not live:
            sub = ml2.alloc(size, ml1)
            if sub is not None:
                live.append(sub)
        else:
            ml2.free(live.pop(), ml1)

    held_by_superchunks = sum(
        len(sc.chunk_ids)
        for stacks in ml2._lists.values()
        for sc in stacks
    )
    # Super-chunks fully allocated (not on any list) still hold chunks;
    # count them through the live sub-chunks' parents.
    off_list = {id(s.superchunk): s.superchunk for s in live}
    for stacks in ml2._lists.values():
        for sc in stacks:
            off_list.pop(id(sc), None)
    held_off_list = sum(len(sc.chunk_ids) for sc in off_list.values())
    assert ml1.count + held_by_superchunks + held_off_list == total_chunks


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=4096),
                min_size=1, max_size=64))
def test_no_subchunk_aliasing(sizes):
    """Two live sub-chunks never share (super-chunk, slot)."""
    ml1 = ML1FreeList()
    ml1.push_many(range(128))
    ml2 = ML2FreeLists()
    live = []
    for size in sizes:
        sub = ml2.alloc(size, ml1)
        if sub is not None:
            live.append(sub)
    keys = {(id(s.superchunk), s.slot) for s in live}
    assert len(keys) == len(live)


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=1, max_value=4096))
def test_geometry_waste_bound(size):
    """Carving never wastes more than one sub-chunk's worth of space."""
    m, n = superchunk_geometry(size)
    waste = m * 4096 - n * size
    assert 0 <= waste < size
    assert n >= 1


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=4096),
                min_size=1, max_size=40))
def test_alloc_free_alloc_is_stable(sizes):
    """Allocating, freeing everything, then reallocating the same sizes
    succeeds and returns ML1 to its starting occupancy in between."""
    ml1 = ML1FreeList()
    ml1.push_many(range(256))
    ml2 = ML2FreeLists()
    first = [ml2.alloc(size, ml1) for size in sizes]
    assert all(first)
    for sub in first:
        ml2.free(sub, ml1)
    assert ml1.count == 256
    second = [ml2.alloc(size, ml1) for size in sizes]
    assert all(second)
