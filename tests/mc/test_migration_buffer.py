"""Edge cases of :meth:`repro.mc.migration.MigrationBuffer.reserve`.

The happy path (stall when all eight entries are busy) is covered by the
fault-injection tests; these pin the boundary behaviours the occupancy
model's heap arithmetic has to get right.
"""

import pytest

from repro.mc.migration import MigrationBuffer


def test_zero_duration_grant_releases_immediately():
    buf = MigrationBuffer(entries=2)
    grant = buf.reserve(10.0, 0.0)
    assert grant.stall_ns == 0.0
    assert grant.start_ns == 10.0
    assert grant.release_ns == 10.0
    assert grant.duration_ns == 0.0
    # A zero-length transfer frees the entry the instant it starts.
    assert buf.occupancy(10.0) == 0


def test_zero_duration_grants_never_accumulate_or_stall():
    buf = MigrationBuffer(entries=1)
    for _ in range(5):
        assert buf.reserve(3.0, 0.0).stall_ns == 0.0
    assert buf.stalls.value == 0
    assert buf.occupancy(3.0) == 0


def test_exact_release_time_reuse_is_not_a_stall():
    """A request arriving exactly when the only entry releases starts
    immediately; the boundary belongs to the new transfer."""
    buf = MigrationBuffer(entries=1)
    first = buf.reserve(0.0, 100.0)
    assert first.release_ns == 100.0
    grant = buf.reserve(100.0, 50.0)
    assert grant.stall_ns == 0.0
    assert grant.start_ns == 100.0
    assert grant.release_ns == 150.0
    assert buf.stalls.value == 0


def test_simultaneous_release_stall_accounting():
    """All entries release at the same instant: exactly one stall is
    recorded for the waiter, and the burst arriving at the release time
    proceeds without phantom stalls."""
    buf = MigrationBuffer(entries=8)
    for _ in range(8):
        buf.reserve(0.0, 200.0)
    assert buf.occupancy(199.0) == 8
    # A ninth request mid-flight waits for the earliest (t=200) release.
    waiter = buf.reserve(50.0, 10.0)
    assert waiter.stall_ns == 150.0
    assert waiter.start_ns == 200.0
    assert buf.stalls.value == 1
    assert buf.stall_ns.mean == 150.0
    # At t=200 the remaining seven entries release together; a burst of
    # seven new requests reuses them with no further stalls.
    for _ in range(7):
        assert buf.reserve(200.0, 10.0).stall_ns == 0.0
    assert buf.stalls.value == 1


def test_negative_duration_rejected():
    buf = MigrationBuffer(entries=1)
    with pytest.raises(ValueError):
        buf.reserve(0.0, -1.0)


def test_zero_entries_rejected():
    with pytest.raises(ValueError):
        MigrationBuffer(entries=0)
