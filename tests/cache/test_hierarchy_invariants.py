"""Property tests: structural invariants of the cache hierarchy.

Whatever access sequence arrives:

1. **Inclusion**: every block in L1 is also in L2.
2. **Exclusion**: no block is in both L2 and L3.
3. **Dirty-data conservation**: a written block is dirty somewhere in the
   hierarchy until the moment it is reported as a DRAM writeback.
"""

from hypothesis import given, settings, strategies as st

from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.common.units import KIB


def tiny():
    return CacheHierarchy(HierarchyConfig(
        l1_size=1 * KIB, l1_assoc=2,
        l2_size=2 * KIB, l2_assoc=2,
        l3_size=8 * KIB, l3_assoc=4,
        enable_prefetch=False,
    ))


def all_blocks(cache):
    return set(cache.blocks())


access_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=255), st.booleans()),
    min_size=1, max_size=300,
)


@settings(max_examples=60, deadline=None)
@given(access_strategy)
def test_inclusion_and_exclusion_invariants(accesses):
    hierarchy = tiny()
    for block, is_write in accesses:
        hierarchy.access(block << 6, is_write=is_write)
        l1 = all_blocks(hierarchy.l1)
        l2 = all_blocks(hierarchy.l2)
        l3 = all_blocks(hierarchy.l3)
        assert l1 <= l2, "inclusive L2 must cover L1"
        assert not (l2 & l3), "exclusive L3 must not duplicate L2"


@settings(max_examples=60, deadline=None)
@given(access_strategy)
def test_dirty_data_is_never_lost(accesses):
    hierarchy = tiny()
    dirty = set()  # blocks written and not yet written back to DRAM
    for block, is_write in accesses:
        result = hierarchy.access(block << 6, is_write=is_write)
        if is_write:
            dirty.add(block)
        for written_back in result.dram_writebacks:
            assert written_back in dirty, "spurious writeback"
            dirty.discard(written_back)
        # Every still-dirty block must be resident somewhere, dirty.
        for pending in dirty:
            line = (hierarchy.l1.peek(pending) or hierarchy.l2.peek(pending)
                    or hierarchy.l3.peek(pending))
            assert line is not None, f"dirty block {pending} vanished"
            assert line.dirty or hierarchy.l1.peek(pending) is not None


@settings(max_examples=40, deadline=None)
@given(access_strategy)
def test_latency_classes_are_consistent(accesses):
    """Reported hit level matches the latency charged."""
    hierarchy = tiny()
    config = hierarchy.config
    expected = {
        "l1": config.l1_latency,
        "l2": config.l1_latency + config.l2_latency,
        "l3": config.l1_latency + config.l2_latency + config.l3_latency,
        "memory": config.l1_latency + config.l2_latency + config.l3_latency,
    }
    for block, is_write in accesses:
        result = hierarchy.access(block << 6, is_write=is_write)
        assert result.latency_cycles == expected[result.hit_level]
        assert result.l3_miss == (result.hit_level == "memory")
