"""Tests for the three-level hierarchy semantics."""

from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.common.units import KIB


def tiny_hierarchy(prefetch=False):
    """Small caches so eviction paths are easy to exercise."""
    return CacheHierarchy(HierarchyConfig(
        l1_size=2 * KIB, l1_assoc=2,
        l2_size=4 * KIB, l2_assoc=2,
        l3_size=16 * KIB, l3_assoc=4,
        enable_prefetch=prefetch,
    ))


def addr(block):
    return block << 6


def test_cold_miss_then_l1_hit():
    h = tiny_hierarchy()
    first = h.access(addr(1))
    assert first.hit_level == "memory"
    assert first.l3_miss
    assert first.latency_cycles == 3 + 11 + 50
    second = h.access(addr(1))
    assert second.hit_level == "l1"
    assert second.latency_cycles == 3


def test_l2_hit_after_l1_eviction():
    h = tiny_hierarchy()
    h.access(addr(0))
    # Fill enough same-set blocks to push block 0 out of L1 but not L2.
    sets_l1 = h.l1.num_sets
    h.access(addr(sets_l1))
    h.access(addr(2 * sets_l1))
    result = h.access(addr(0))
    assert result.hit_level in ("l2", "l3")
    assert result.latency_cycles >= 14


def test_exclusive_l3_hit_moves_block_up():
    h = tiny_hierarchy()
    h.access(addr(0))
    # Push block 0 all the way into L3 by thrashing L1+L2 set 0.
    stride = h.l2.num_sets
    for i in range(1, 8):
        h.access(addr(i * stride))
    assert h.l3.contains(0), "victim should have landed in L3"
    result = h.access(addr(0))
    assert result.hit_level == "l3"
    assert not h.l3.contains(0), "exclusive L3 must hand the block up"
    assert h.l1.contains(0)


def test_memory_fill_bypasses_l3():
    h = tiny_hierarchy()
    h.access(addr(42))
    assert h.l1.contains(42)
    assert h.l2.contains(42)
    assert not h.l3.contains(42)  # exclusive: fills go to L2/L1 only


def test_inclusive_l2_back_invalidates_l1():
    h = tiny_hierarchy()
    h.access(addr(0))
    stride = h.l2.num_sets
    # Evict block 0 from L2; its L1 copy must disappear too.
    h.access(addr(stride))
    h.access(addr(2 * stride))
    assert not h.l2.contains(0)
    assert not h.l1.contains(0)


def test_dirty_writeback_reaches_dram():
    h = tiny_hierarchy()
    h.access(addr(0), is_write=True)
    stride = h.l2.num_sets
    writebacks = []
    # Thrash through L2 and L3 set 0 until block 0's dirty line leaves L3.
    for i in range(1, 32):
        result = h.access(addr(i * stride))
        writebacks += result.dram_writebacks
    assert 0 in writebacks


def test_clean_evictions_do_not_write_back():
    h = tiny_hierarchy()
    stride = h.l2.num_sets
    writebacks = []
    for i in range(32):
        result = h.access(addr(i * stride))
        writebacks += result.dram_writebacks
    assert writebacks == []


def test_ptb_flag_propagates():
    h = tiny_hierarchy()
    h.access(addr(7), is_ptb=True)
    assert h.l1.peek(7).is_ptb
    assert h.l2.peek(7).is_ptb


def test_mark_compressed_and_served_flag():
    h = tiny_hierarchy()
    h.access(addr(3), is_ptb=True)
    h.mark_compressed(addr(3))
    # Evict from L1 only, then re-access: served from L2 with the flag.
    sets_l1 = h.l1.num_sets
    h.access(addr(3 + sets_l1))
    h.access(addr(3 + 2 * sets_l1))
    result = h.access(addr(3))
    assert result.hit_level in ("l2", "l3")
    assert result.served_compressed


def test_resident_line_and_invalidate_everywhere():
    h = tiny_hierarchy()
    h.access(addr(9))
    assert h.resident_line(addr(9)) is not None
    h.invalidate_everywhere(addr(9))
    assert h.resident_line(addr(9)) is None


def test_prefetch_brings_next_line_into_l2():
    h = tiny_hierarchy(prefetch=True)
    h.access(addr(100))
    assert h.l2.contains(101), "next-line prefetch should fill block+1"


def test_stride_prefetch_runs_ahead():
    h = tiny_hierarchy(prefetch=True)
    # Three accesses with stride 2 inside one region train the prefetcher.
    h.access(addr(200))
    h.access(addr(202))
    h.access(addr(204))
    assert h.l2.contains(206) or h.l1.contains(206)


def test_prefetch_disabled_config():
    h = tiny_hierarchy(prefetch=False)
    h.access(addr(100))
    assert not h.l2.contains(101)
