"""Tests for the set-associative cache."""

import pytest

from repro.cache.sa_cache import SetAssociativeCache
from repro.common.units import KIB


def test_geometry():
    cache = SetAssociativeCache(64 * KIB, 8, "l1")
    assert cache.num_sets == 128


def test_geometry_validation():
    with pytest.raises(ValueError):
        SetAssociativeCache(1000, 8)
    with pytest.raises(ValueError):
        SetAssociativeCache(3 * 64 * 4, 4)  # 3 sets: not a power of two


def test_miss_then_hit():
    cache = SetAssociativeCache(4 * KIB, 4)
    assert cache.lookup(10) is None
    cache.fill(10)
    assert cache.lookup(10) is not None
    assert cache.stats.hits == 1
    assert cache.stats.total == 2


def test_lru_eviction_within_set():
    cache = SetAssociativeCache(2 * 64 * 2, 2)  # 2 sets, 2 ways
    # Blocks 0, 2, 4 map to set 0.
    cache.fill(0)
    cache.fill(2)
    cache.lookup(0)  # 0 becomes MRU
    victim = cache.fill(4)
    assert victim is not None
    assert victim.block == 2
    assert cache.contains(0)
    assert not cache.contains(2)


def test_write_sets_dirty():
    cache = SetAssociativeCache(4 * KIB, 4)
    cache.fill(5)
    assert not cache.peek(5).dirty
    cache.lookup(5, is_write=True)
    assert cache.peek(5).dirty


def test_fill_merges_flags():
    cache = SetAssociativeCache(4 * KIB, 4)
    cache.fill(7, dirty=True)
    cache.fill(7, dirty=False, compressed=True)
    line = cache.peek(7)
    assert line.dirty  # dirty is sticky
    assert line.compressed


def test_peek_has_no_side_effects():
    cache = SetAssociativeCache(2 * 64 * 2, 2)
    cache.fill(0)
    cache.fill(2)
    cache.peek(0)  # must NOT refresh recency
    victim = cache.fill(4)
    assert victim.block == 0


def test_invalidate():
    cache = SetAssociativeCache(4 * KIB, 4)
    cache.fill(9, dirty=True)
    line = cache.invalidate(9)
    assert line.dirty
    assert not cache.contains(9)
    assert cache.invalidate(9) is None


def test_flush_returns_dirty_lines():
    cache = SetAssociativeCache(4 * KIB, 4)
    cache.fill(1, dirty=True)
    cache.fill(2, dirty=False)
    dirty = cache.flush()
    assert [line.block for line in dirty] == [1]
    assert cache.occupancy == 0


def test_different_sets_do_not_conflict():
    cache = SetAssociativeCache(2 * 64 * 1, 1)  # 2 sets, direct-mapped
    cache.fill(0)  # set 0
    cache.fill(1)  # set 1
    assert cache.contains(0)
    assert cache.contains(1)
