"""Unit tests for the prefetchers."""

from repro.cache.prefetch import NextLinePrefetcher, StridePrefetcher


# ----------------------------------------------------------------------
# Next-line
# ----------------------------------------------------------------------

def test_next_line_prefetches_block_plus_one():
    prefetcher = NextLinePrefetcher()
    assert prefetcher.on_miss(100) == [101]


def test_next_line_turns_off_when_useless():
    prefetcher = NextLinePrefetcher(window=16, min_accuracy=0.5)
    # Misses all over the place; none of the prefetched blocks are used.
    block = 0
    for i in range(200):
        block += 1000
        prefetcher.on_miss(block)
    assert not prefetcher.enabled


def test_next_line_stays_on_for_sequential_streams():
    prefetcher = NextLinePrefetcher(window=16, min_accuracy=0.5)
    block = 0
    for _ in range(200):
        prefetcher.train_demand(block)
        prefetcher.on_miss(block)
        block += 1  # the next demand hits the previous prefetch
    assert prefetcher.enabled


def test_next_line_reenables_after_cooloff():
    prefetcher = NextLinePrefetcher(window=8, min_accuracy=0.9)
    block = 0
    for _ in range(200):
        if not prefetcher.enabled:
            break
        block += 999
        prefetcher.on_miss(block)
    assert not prefetcher.enabled
    for _ in range(8):  # one cool-off window of further misses
        block += 999
        prefetcher.on_miss(block)
    assert prefetcher.enabled


# ----------------------------------------------------------------------
# Stride
# ----------------------------------------------------------------------

def test_stride_needs_two_confirmations():
    prefetcher = StridePrefetcher(degree=2)
    assert prefetcher.on_access(10) == []
    assert prefetcher.on_access(12) == []       # stride learned, unconfirmed
    assert prefetcher.on_access(14) == [16, 18]  # confirmed


def test_stride_handles_negative_strides():
    prefetcher = StridePrefetcher(degree=1)
    prefetcher.on_access(100)
    prefetcher.on_access(98)
    assert prefetcher.on_access(96) == [94]


def test_stride_resets_on_stride_change():
    prefetcher = StridePrefetcher(degree=2)
    prefetcher.on_access(10)
    prefetcher.on_access(12)
    prefetcher.on_access(14)
    assert prefetcher.on_access(20) == []  # stride broke


def test_stride_tracks_regions_independently():
    prefetcher = StridePrefetcher(degree=1)
    region_a = 0
    region_b = 1 << 10  # different 4 KB region
    prefetcher.on_access(region_a + 0)
    prefetcher.on_access(region_b + 0)
    prefetcher.on_access(region_a + 2)
    prefetcher.on_access(region_b + 3)
    assert prefetcher.on_access(region_a + 4) == [region_a + 6]
    assert prefetcher.on_access(region_b + 6) == [region_b + 9]


def test_stride_table_eviction():
    prefetcher = StridePrefetcher(degree=1, table_entries=2)
    for region in range(8):
        prefetcher.on_access(region << 6)
    # Oldest regions evicted; re-touching one starts training over.
    assert prefetcher.on_access((0 << 6) + 1) == []


def test_stride_never_prefetches_negative_blocks():
    prefetcher = StridePrefetcher(degree=4)
    prefetcher.on_access(8)
    prefetcher.on_access(5)
    result = prefetcher.on_access(2)
    assert all(block >= 0 for block in result)


def test_stride_degree_validation():
    import pytest

    with pytest.raises(ValueError):
        StridePrefetcher(degree=0)
