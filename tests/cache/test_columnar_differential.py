"""Differential tests: columnar cache vs the OrderedDict reference.

`SetAssociativeCache` (flat parallel columns + per-set order lists) and
`ReferenceSetAssociativeCache` (per-entry `CacheLine` objects in an
`OrderedDict` per set) implement the same spec.  Hypothesis drives both
through identical random operation sequences and demands identical
observable behaviour at every step: hit/miss outcomes, victim lines,
line metadata, stats, occupancy, and the resident-block set.
"""

from hypothesis import given, settings, strategies as st

from repro.cache.sa_cache import (
    CacheLine,
    ReferenceSetAssociativeCache,
    SetAssociativeCache,
)

# Small geometry so sequences of ~100 ops exercise eviction constantly:
# 8 sets x 2 ways = 16 resident blocks.
SIZE_BYTES = 8 * 2 * 64
ASSOC = 2

# Few distinct blocks -> heavy set conflict and re-reference.
blocks = st.integers(min_value=0, max_value=40)

operation = st.one_of(
    st.tuples(st.just("lookup"), blocks, st.booleans()),
    st.tuples(st.just("fill"), blocks, st.booleans(), st.booleans(),
              st.booleans()),
    st.tuples(st.just("peek"), blocks),
    st.tuples(st.just("invalidate"), blocks),
    st.tuples(st.just("flush")),
)


def as_tuple(line):
    if line is None:
        return None
    assert isinstance(line, CacheLine)
    return (line.block, line.dirty, line.compressed, line.is_ptb)


def apply(cache, op):
    """Run one operation; return its observable outcome as plain data."""
    if op[0] == "lookup":
        return as_tuple(cache.lookup(op[1], is_write=op[2]))
    if op[0] == "fill":
        return as_tuple(cache.fill(op[1], dirty=op[2], compressed=op[3],
                                   is_ptb=op[4]))
    if op[0] == "peek":
        return as_tuple(cache.peek(op[1]))
    if op[0] == "invalidate":
        return as_tuple(cache.invalidate(op[1]))
    return sorted(as_tuple(line) for line in cache.flush())


@settings(max_examples=200, deadline=None)
@given(st.lists(operation, max_size=120))
def test_columnar_matches_reference(ops):
    columnar = SetAssociativeCache(SIZE_BYTES, ASSOC, name="dut")
    reference = ReferenceSetAssociativeCache(SIZE_BYTES, ASSOC, name="dut")
    for op in ops:
        assert apply(columnar, op) == apply(reference, op), op
        assert columnar.occupancy == reference.occupancy
        assert columnar.stats.total == reference.stats.total
        assert columnar.stats.hits == reference.stats.hits
    assert sorted(columnar.blocks()) == sorted(reference.blocks())


@settings(max_examples=50, deadline=None)
@given(st.lists(operation, max_size=80))
def test_columnar_eviction_order_matches_reference(ops):
    """After any op sequence, filling each set to overflow must evict
    the same victims in the same order from both implementations --
    i.e. the per-set recency orders are identical, not just the
    resident sets."""
    columnar = SetAssociativeCache(SIZE_BYTES, ASSOC, name="dut")
    reference = ReferenceSetAssociativeCache(SIZE_BYTES, ASSOC, name="dut")
    for op in ops:
        apply(columnar, op)
        apply(reference, op)
    # Drain each set LRU-first by filling fresh conflicting blocks.
    for set_index in range(columnar.num_sets):
        for way in range(ASSOC):
            probe = 1000 + way * columnar.num_sets + set_index
            assert (as_tuple(columnar.fill(probe))
                    == as_tuple(reference.fill(probe)))
