"""Tests for the pinned performance suite (``repro.bench`` + CLI)."""

import json

import pytest

from repro.bench import (
    BENCH_WORKLOADS,
    compare_to_baseline,
    default_output_name,
    load_document,
    run_suite,
    write_document,
)
from repro.cli import main
from repro.common.errors import ConfigError


def document(rates, suite_rate=None):
    """A minimal bench document with the given per-config rates."""
    return {
        "schema": "repro-bench/1",
        "configs": [
            {"workload": workload, "controller": controller,
             "accesses": 1000, "elapsed_s": 1.0,
             "accesses_per_s": rate}
            for (workload, controller), rate in rates.items()
        ],
        "suite_accesses_per_s": suite_rate,
    }


def test_compare_passes_within_allowance():
    baseline = document({("mcf", "tmcc"): 1000.0}, suite_rate=1000.0)
    current = document({("mcf", "tmcc"): 850.0}, suite_rate=850.0)
    assert compare_to_baseline(current, baseline, 0.20) == []


def test_compare_flags_config_and_suite_regressions():
    baseline = document({("mcf", "tmcc"): 1000.0,
                         ("mcf", "compresso"): 1000.0}, suite_rate=1000.0)
    current = document({("mcf", "tmcc"): 700.0,
                        ("mcf", "compresso"): 990.0}, suite_rate=700.0)
    messages = compare_to_baseline(current, baseline, 0.20)
    assert len(messages) == 2
    assert any(m.startswith("mcf/tmcc") for m in messages)
    assert any(m.startswith("suite") for m in messages)


def test_compare_skips_unmatched_configs():
    baseline = document({("mcf", "tmcc"): 1000.0})
    current = document({("bfs", "tmcc"): 1.0})
    assert compare_to_baseline(current, baseline, 0.20) == []


def test_compare_rejects_bad_allowance():
    with pytest.raises(ConfigError):
        compare_to_baseline(document({}), document({}), 1.0)


def test_run_suite_rejects_unknown_workload():
    with pytest.raises(ConfigError):
        run_suite(accesses=100, workloads=("nope",))


def test_default_output_name_is_dated():
    from datetime import date

    assert default_output_name(date(2026, 8, 8)) == "BENCH_2026-08-08.json"


def test_load_document_rejects_non_bench_json(tmp_path):
    path = tmp_path / "junk.json"
    path.write_text("[1, 2, 3]")
    with pytest.raises(ConfigError):
        load_document(str(path))
    with pytest.raises(ConfigError):
        load_document(str(tmp_path / "missing.json"))


def test_cli_bench_rejects_unknown_workload(capsys):
    assert main(["bench", "--workloads", "doom3", "--accesses", "100"]) == 2
    assert "unknown bench workload" in capsys.readouterr().err


def test_cli_bench_rejects_bad_regression_bound(capsys):
    assert main(["bench", "--max-regression", "-0.1"]) == 2
    assert "--max-regression" in capsys.readouterr().err


def test_cli_bench_rejects_bad_accesses(capsys):
    assert main(["bench", "--accesses", "0"]) == 2
    assert "--accesses" in capsys.readouterr().err


def test_cli_bench_runs_and_gates(tmp_path, capsys):
    """End to end at toy scale: write a document, then gate a second
    run against it with a full allowance (cannot flake)."""
    out = tmp_path / "bench.json"
    argv = ["bench", "--workloads", "omnetpp", "--accesses", "1500",
            "--out", str(out)]
    assert main(argv) == 0
    capsys.readouterr()
    record = json.loads(out.read_text())
    assert record["schema"] == "repro-bench/1"
    assert [c["controller"] for c in record["configs"]] == [
        "uncompressed", "compresso", "tmcc"]
    assert all(c["accesses_per_s"] > 0 for c in record["configs"])
    assert record["suite_accesses"] == 3 * 1500

    relaxed = tmp_path / "relaxed.json"
    write_document({**record, "configs": [
        dict(c, accesses_per_s=0.001) for c in record["configs"]
    ], "suite_accesses_per_s": 0.001}, str(relaxed))
    assert main(argv[:-1] + [str(tmp_path / "second.json"),
                             "--baseline", str(relaxed)]) == 0
    assert "no regression" in capsys.readouterr().out

    demanding = tmp_path / "demanding.json"
    write_document({**record, "configs": [
        dict(c, accesses_per_s=c["accesses_per_s"] * 1e6)
        for c in record["configs"]
    ], "suite_accesses_per_s": 1e12}, str(demanding))
    assert main(argv[:-1] + [str(tmp_path / "third.json"),
                             "--baseline", str(demanding)]) == 1
    assert "regression:" in capsys.readouterr().err


def test_bench_workloads_are_the_fig18_set():
    assert BENCH_WORKLOADS == ("pageRank", "shortestPath", "bfs", "kcore",
                               "mcf", "omnetpp", "canneal")
