"""Tests for the pinned performance suite (``repro.bench`` + CLI)."""

import json

import pytest

from repro.bench import (
    BENCH_WORKLOADS,
    SEED_SUITE_RATE,
    compare_to_baseline,
    controller_rates,
    default_output_name,
    host_metadata,
    load_document,
    render_history,
    run_suite,
    write_document,
)
from repro.cli import main
from repro.common.errors import ConfigError
from repro.common.numpy_compat import numpy_or_none


def document(rates, suite_rate=None):
    """A minimal bench document with the given per-config rates."""
    return {
        "schema": "repro-bench/1",
        "configs": [
            {"workload": workload, "controller": controller,
             "accesses": 1000, "elapsed_s": 1.0,
             "accesses_per_s": rate}
            for (workload, controller), rate in rates.items()
        ],
        "suite_accesses_per_s": suite_rate,
    }


def test_compare_passes_within_allowance():
    baseline = document({("mcf", "tmcc"): 1000.0}, suite_rate=1000.0)
    current = document({("mcf", "tmcc"): 850.0}, suite_rate=850.0)
    assert compare_to_baseline(current, baseline, 0.20) == []


def test_compare_flags_config_and_suite_regressions():
    baseline = document({("mcf", "tmcc"): 1000.0,
                         ("mcf", "compresso"): 1000.0}, suite_rate=1000.0)
    current = document({("mcf", "tmcc"): 700.0,
                        ("mcf", "compresso"): 990.0}, suite_rate=700.0)
    messages = compare_to_baseline(current, baseline, 0.20)
    assert len(messages) == 2
    assert any(m.startswith("mcf/tmcc") for m in messages)
    assert any(m.startswith("suite") for m in messages)


def test_compare_skips_unmatched_configs():
    baseline = document({("mcf", "tmcc"): 1000.0})
    current = document({("bfs", "tmcc"): 1.0})
    assert compare_to_baseline(current, baseline, 0.20) == []


def test_compare_rejects_bad_allowance():
    with pytest.raises(ConfigError):
        compare_to_baseline(document({}), document({}), 1.0)


def test_run_suite_rejects_unknown_workload():
    with pytest.raises(ConfigError):
        run_suite(accesses=100, workloads=("nope",))


def test_default_output_name_is_dated():
    from datetime import date

    assert default_output_name(date(2026, 8, 8)) == "BENCH_2026-08-08.json"


def test_load_document_rejects_non_bench_json(tmp_path):
    path = tmp_path / "junk.json"
    path.write_text("[1, 2, 3]")
    with pytest.raises(ConfigError):
        load_document(str(path))
    with pytest.raises(ConfigError):
        load_document(str(tmp_path / "missing.json"))


def test_cli_bench_rejects_unknown_workload(capsys):
    assert main(["bench", "--workloads", "doom3", "--accesses", "100"]) == 2
    assert "unknown bench workload" in capsys.readouterr().err


def test_cli_bench_rejects_bad_regression_bound(capsys):
    assert main(["bench", "--max-regression", "-0.1"]) == 2
    assert "--max-regression" in capsys.readouterr().err


def test_cli_bench_rejects_bad_accesses(capsys):
    assert main(["bench", "--accesses", "0"]) == 2
    assert "--accesses" in capsys.readouterr().err


def test_cli_bench_runs_and_gates(tmp_path, capsys):
    """End to end at toy scale: write a document, then gate a second
    run against it with a full allowance (cannot flake)."""
    out = tmp_path / "bench.json"
    argv = ["bench", "--workloads", "omnetpp", "--accesses", "1500",
            "--out", str(out)]
    assert main(argv) == 0
    capsys.readouterr()
    record = json.loads(out.read_text())
    assert record["schema"] == "repro-bench/1"
    assert [c["controller"] for c in record["configs"]] == [
        "uncompressed", "compresso", "tmcc"]
    assert all(c["accesses_per_s"] > 0 for c in record["configs"])
    assert record["suite_accesses"] == 3 * 1500

    relaxed = tmp_path / "relaxed.json"
    write_document({**record, "configs": [
        dict(c, accesses_per_s=0.001) for c in record["configs"]
    ], "suite_accesses_per_s": 0.001}, str(relaxed))
    assert main(argv[:-1] + [str(tmp_path / "second.json"),
                             "--baseline", str(relaxed)]) == 0
    assert "no regression" in capsys.readouterr().out

    demanding = tmp_path / "demanding.json"
    write_document({**record, "configs": [
        dict(c, accesses_per_s=c["accesses_per_s"] * 1e6)
        for c in record["configs"]
    ], "suite_accesses_per_s": 1e12}, str(demanding))
    assert main(argv[:-1] + [str(tmp_path / "third.json"),
                             "--baseline", str(demanding)]) == 1
    assert "regression:" in capsys.readouterr().err


def test_host_metadata_identifies_the_machine():
    host = host_metadata()
    assert host["python"].count(".") == 2
    assert isinstance(host["cpu"], str) and host["cpu"]
    assert host["numpy"] is (numpy_or_none() is not None)
    assert {"machine", "system"} <= host.keys()


def test_host_metadata_numpy_flag_respects_mask(monkeypatch):
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    assert host_metadata()["numpy"] is False


def test_controller_rates_aggregate_not_average():
    doc = {"configs": [
        {"workload": "mcf", "controller": "tmcc",
         "accesses": 1000, "elapsed_s": 1.0, "accesses_per_s": 1000.0},
        {"workload": "bfs", "controller": "tmcc",
         "accesses": 3000, "elapsed_s": 1.0, "accesses_per_s": 3000.0},
    ]}
    # 4000 accesses over 2 s, not the 2000 a per-config mean would give.
    assert controller_rates(doc) == {"tmcc": 2000.0}


def test_render_history_table(tmp_path):
    early = document({("mcf", "uncompressed"): 100.0,
                      ("mcf", "tmcc"): 50.0}, suite_rate=SEED_SUITE_RATE)
    late = document({("mcf", "uncompressed"): 200.0,
                     ("mcf", "tmcc"): 100.0},
                    suite_rate=2 * SEED_SUITE_RATE)
    write_document(early, str(tmp_path / "BENCH_2026-01-01.json"))
    write_document(late, str(tmp_path / "BENCH_2026-02-01.json"))
    table = render_history(str(tmp_path))
    lines = table.splitlines()
    assert lines[0].split()[:2] == ["document", "uncompressed"]
    assert "compresso" in lines[0] and "tmcc" in lines[0]
    early_row, late_row = lines[2], lines[3]
    assert early_row.startswith("BENCH_2026-01-01.json")
    assert "1.00x" in early_row and "2.00x" in late_row
    assert late_row.split()[1] == "1,000"  # 1000 acc / 1.0 s, uncompressed
    assert "-" in early_row.split()  # compresso column absent in fixture


def test_render_history_rejects_empty_directory(tmp_path):
    with pytest.raises(ConfigError):
        render_history(str(tmp_path))


def test_cli_bench_history_runs_no_suite(tmp_path, capsys):
    write_document(document({("mcf", "tmcc"): 500.0}, suite_rate=500.0),
                   str(tmp_path / "BENCH_2026-03-04.json"))
    assert main(["bench", "--history", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "BENCH_2026-03-04.json" in out
    assert "vs seed" in out


def test_cli_bench_history_missing_directory_is_config_error(capsys):
    assert main(["bench", "--history", "/no/such/dir"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error (config):")
    assert len(err.strip().splitlines()) == 1


def test_cli_bench_baseline_missing_file_is_config_error(capsys):
    """--baseline pointing nowhere must fail fast (before the suite
    runs) with a one-line config error and exit 2."""
    assert main(["bench", "--baseline", "/no/such/baseline.json"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error (config):")
    assert "cannot read benchmark document" in err
    assert len(err.strip().splitlines()) == 1


def test_cli_bench_baseline_mismatched_schema_is_config_error(tmp_path,
                                                              capsys):
    stale = tmp_path / "stale.json"
    stale.write_text(json.dumps({"schema": "repro-bench/0",
                                 "configs": []}))
    assert main(["bench", "--baseline", str(stale)]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error (config):")
    assert "repro-bench/0" in err and "repro-bench/1" in err
    assert len(err.strip().splitlines()) == 1


def test_cli_bench_baseline_malformed_config_record(tmp_path, capsys):
    broken = tmp_path / "broken.json"
    broken.write_text(json.dumps({
        "schema": "repro-bench/1",
        "configs": [{"workload": "mcf", "controller": "tmcc",
                     "accesses_per_s": "fast"}],
    }))
    assert main(["bench", "--baseline", str(broken)]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error (config):")
    assert "accesses_per_s" in err


def test_bench_workloads_are_the_fig18_set():
    assert BENCH_WORKLOADS == ("pageRank", "shortestPath", "bfs", "kcore",
                               "mcf", "omnetpp", "canneal")
