"""Tests for the rejected CTEs-in-LLC victim scheme (Section III)."""

from repro.core.compresso import CompressoController, CompressoLLCVictimController
from repro.dram.system import DRAMSystem

from tests.core.conftest import make_pages


def make_controller(system, model, victim, pages=4096):
    cls = CompressoLLCVictimController if victim else CompressoController
    controller = cls(system, DRAMSystem())
    ppns, hotness = make_pages(pages)
    controller.initialize(ppns, hotness, [], model)
    return controller, ppns


def thrash(controller, ppns, rounds=3):
    """Sweep far more pages than the CTE cache reaches, repeatedly."""
    now = 0.0
    for _ in range(rounds):
        for ppn in ppns:
            controller.serve_l3_miss(ppn, 0, now)
            now += 200.0
    return controller.average_miss_latency_ns


def test_llc_victim_catches_some_cte_misses(system, graph_model):
    controller, ppns = make_controller(system, graph_model, victim=True)
    thrash(controller, ppns)
    assert controller.stats.counter("cte_llc_hits").value > 0
    assert 0.0 < controller.cte_llc_hit_rate < 1.0


def test_llc_victim_hits_are_cheaper_than_dram_but_not_free(system, graph_model):
    controller, ppns = make_controller(system, graph_model, victim=True,
                                       pages=3000)
    thrash(controller, ppns)
    # An LLC victim hit costs the fixed ~20 ns LLC access.
    assert CompressoController.LLC_ACCESS_NS == 20.0


def test_llc_victim_scheme_is_not_clearly_better(system, graph_model):
    """The paper's finding: caching CTEs in the LLC is a wash or slightly
    worse, because misses are discovered ~20 ns late."""
    plain, ppns = make_controller(system, graph_model, victim=False)
    plain_latency = thrash(plain, ppns)
    victim, ppns_v = make_controller(system, graph_model, victim=True)
    victim_latency = thrash(victim, ppns_v)
    # Within a small band either way; certainly no big win.
    assert victim_latency > plain_latency * 0.9


def test_victim_capacity_is_bounded(system, graph_model):
    controller, ppns = make_controller(system, graph_model, victim=True,
                                       pages=8192)
    thrash(controller, ppns, rounds=1)
    assert len(controller._llc_victims) <= controller._llc_victim_capacity


def test_default_compresso_keeps_ctes_out_of_llc(system, graph_model):
    controller, ppns = make_controller(system, graph_model, victim=False)
    thrash(controller, ppns, rounds=1)
    assert controller.stats.counter("cte_llc_hits").value == 0
    assert not controller._llc_victims
