"""Shared fixtures for controller unit tests."""

import pytest

from repro.core.compmodel import PageCompressionModel
from repro.core.config import SystemConfig
from repro.dram.system import DRAMSystem
from repro.workloads.content import ContentSynthesizer


@pytest.fixture(scope="session")
def system():
    return SystemConfig()


@pytest.fixture(scope="session")
def graph_model():
    """A small compression oracle over graph-profile pages."""
    return PageCompressionModel(
        ContentSynthesizer("graph", seed=2).page, sample_pages=8, seed=2
    )


@pytest.fixture
def dram():
    return DRAMSystem()


def make_pages(count, hot_first=True):
    """``count`` data ppns with hotness rank equal to list position."""
    ppns = list(range(100, 100 + count))
    hotness = {ppn: rank for rank, ppn in enumerate(ppns)}
    return ppns, hotness
