"""Tests for the page-compression oracle."""

import pytest

from repro.common.units import PAGE_SIZE
from repro.core.compmodel import PageCompressionModel
from repro.workloads.content import ContentSynthesizer


def make_model(profile="graph", samples=6, seed=1):
    return PageCompressionModel(
        ContentSynthesizer(profile, seed=seed).page, sample_pages=samples,
        seed=seed,
    )


def test_records_are_measured_not_fabricated():
    model = make_model()
    record = model.record_for(0)
    assert 0 < record.deflate_bytes <= PAGE_SIZE + 3
    assert 0 < record.block_bytes
    assert record.decompress_half_ns < record.decompress_full_ns
    assert record.compress_ns > 0


def test_ibm_latencies_are_slower():
    """The whole point of Section V-B: IBM's ASIC is several times slower
    on 4 KB pages."""
    model = make_model()
    record = model.record_for(5)
    assert record.ibm_decompress_half_ns > 3 * record.decompress_half_ns
    assert record.ibm_decompress_full_ns > 2 * record.decompress_full_ns


def test_assignment_is_deterministic_and_total():
    model = make_model(samples=4)
    for vpn in range(100):
        assert model.record_for(vpn) is model.record_for(vpn)


def test_different_vpns_spread_over_samples():
    model = make_model(samples=8)
    distinct = {id(model.record_for(vpn)) for vpn in range(64)}
    assert len(distinct) > 1


def test_aggregates():
    model = make_model()
    assert model.deflate_corpus_ratio() > model.block_corpus_ratio() > 1.0
    assert model.mean_deflate_bytes() < model.mean_block_bytes()


def test_graph_ratio_near_paper_target():
    """Table IV column E: ~3.0x for the graph family."""
    model = make_model(samples=12)
    assert 2.2 <= model.deflate_corpus_ratio() <= 4.0


def test_incompressible_flag():
    import random

    rng = random.Random(1)
    model = PageCompressionModel(lambda vpn: rng.randbytes(PAGE_SIZE),
                                 sample_pages=3, seed=1)
    assert all(model.record_for(v).deflate_incompressible for v in range(10))


def test_sample_count_validation():
    with pytest.raises(ValueError):
        PageCompressionModel(lambda v: b"\x00" * PAGE_SIZE, sample_pages=0)
