"""Golden-latency regression for the access-pipeline refactor.

The pipeline algebra replaced hand-written latency arithmetic in every
controller's miss path; these goldens pin the refactor to **bit-identical**
per-access latencies (captured on the pre-pipeline code for a fixed
trace/seed).  Totals are compared by ``repr`` so any fp re-association
sneaking into the algebra fails loudly rather than rounding away.
"""

import pytest

from repro.core import PageCompressionModel, SystemConfig, create_controller
from repro.dram.system import DRAMSystem
from repro.sim.simulator import Simulator
from repro.workloads.suite import workload_by_name

#: controller -> (avg miss latency repr, LLC misses, elapsed repr, DRAM reads)
#: captured pre-refactor: mcf, max_accesses=6000, scale=0.12, seed=3,
#: budget = 70% of footprint for the two-level designs.
FULL_SIM_GOLDEN = {
    "compresso": ("72.41417133458619", 285, "13501.742473660925", 418),
    "compresso_llc_victim": ("82.47161218671651", 285,
                             "14791.609262946364", 418),
    "osinspired": ("111.13212151574618", 285, "18467.319584394216", 354),
    "osinspired_fastml2": ("75.19355463283185", 285,
                           "13858.198381660906", 354),
    "tmcc": ("68.35555510400968", 285, "12981.224942089702", 354),
    "uncompressed": ("50.389590852130176", 285, "10677.090026786153", 285),
}

BUDGETED = ("osinspired", "osinspired_fastml2", "tmcc")


@pytest.mark.parametrize("controller", sorted(FULL_SIM_GOLDEN))
def test_full_sim_latency_bit_identical(controller):
    workload = workload_by_name("mcf", max_accesses=6000, scale=0.12)
    budget = (int(workload.footprint_pages * 4096 * 0.7)
              if controller in BUDGETED else None)
    result = Simulator(workload, controller=controller, seed=3,
                       dram_budget_bytes=budget).run()
    avg, misses, elapsed, reads = FULL_SIM_GOLDEN[controller]
    assert repr(result.avg_l3_miss_latency_ns) == avg
    assert result.l3_misses == misses
    assert repr(result.elapsed_ns) == elapsed
    assert result.dram_reads == reads


def test_tmcc_per_path_latency_and_stages():
    """Each TMCC service path keeps its pre-refactor latency, and the
    timeline decomposes it into the expected stages (Figure 8)."""
    workload = workload_by_name("mcf", max_accesses=2000, scale=0.1)
    config = SystemConfig()
    controller = create_controller("tmcc", config, DRAMSystem(config.dram),
                                   seed=5)
    model = PageCompressionModel(workload.content,
                                 sample_pages=config.compression_samples,
                                 deflate_config=config.deflate,
                                 timing=config.deflate_timing,
                                 ibm=config.ibm_timing, seed=5)
    ppns = list(range(100, 160))
    controller.initialize(ppns, {p: i for i, p in enumerate(ppns)},
                          [50, 51], model, int(len(ppns) * 4096 * 0.8))

    # Stale embedded CTE for ppn 100 -> parallel verify detects a mismatch.
    snapshot = controller._snapshot(100)
    controller._cte_buffer[100] = ((snapshot[0] + 1,) + snapshot[1:], 0xBEEF)
    mismatch = controller.serve_l3_miss(100, 3, 100.0)
    # Fresh embedded CTE for ppn 120 -> speculation wins.
    controller._cte_buffer[120] = (controller._snapshot(120), 0xBEEF)
    ok = controller.serve_l3_miss(120, 5, 300.0)
    # No embedded CTE, CTE-cache miss -> serial, like prior work.
    serial_miss = controller.serve_l3_miss(108, 1, 500.0)
    # Page resident in ML2 -> decompress + migrate.
    ml2 = controller.serve_l3_miss(136, 0, 700.0)

    assert (mismatch.latency_ns, mismatch.path) == (84.75, "parallel_mismatch")
    assert (ok.latency_ns, ok.path) == (50.5, "parallel_ok")
    assert (serial_miss.latency_ns, serial_miss.path) == (64.25,
                                                          "serial_no_cte")
    assert (ml2.latency_ns, ml2.path) == (860.338, "ml2")

    # Stage decomposition and critical-path / wasted-work attribution.
    assert mismatch.timeline.stage_names() == [
        "cte_fetch", "spec_data_fetch", "data_fetch"]
    assert [s.name for s in mismatch.timeline.spans if s.wasted] == [
        "spec_data_fetch"]
    assert ok.timeline.stage_names() == ["cte_fetch", "data_fetch"]
    assert not ok.timeline.span("cte_fetch").critical  # lost the race
    assert ok.timeline.span("cte_fetch").slack_ns == 34.25
    assert serial_miss.timeline.stage_names() == ["cte_fetch", "data_fetch"]
    assert all(s.critical for s in serial_miss.timeline.spans)
    assert ml2.timeline.stage_names() == [
        "cte_fetch", "ml2_read", "decompress", "migration_stall", "evict"]

    # Every recorded timeline's critical spans add up to its total.
    for result in (mismatch, ok, serial_miss, ml2):
        assert abs(result.timeline.critical_ns()
                   - result.timeline.total_ns) < 1e-9
