"""Unit tests for the compression controllers (driven directly)."""

import pytest

from repro.common.units import PAGE_SIZE
from repro.core.base import (
    PATH_CTE_HIT,
    PATH_PARALLEL_MISMATCH,
    PATH_PARALLEL_OK,
    PATH_SERIAL_NO_CTE,
)
from repro.core.compresso import CompressoController
from repro.core.osinspired import OSInspiredController
from repro.core.tmcc import TMCCController
from repro.core.twolevel import TwoLevelController
from repro.core.uncompressed import UncompressedController
from repro.vm.pte import STATUS_DEFAULT_DATA, make_pte

from tests.core.conftest import make_pages


# ----------------------------------------------------------------------
# Uncompressed
# ----------------------------------------------------------------------

def test_uncompressed_miss_latency_near_53ns(system, dram, graph_model):
    controller = UncompressedController(system, dram)
    ppns, hotness = make_pages(16)
    controller.initialize(ppns, hotness, [], graph_model)
    result = controller.serve_l3_miss(ppns[0], 0, now_ns=0.0)
    # NoC (18) + closed-row DRAM (~30): Figure 18's ~53 ns regime.
    assert 40 <= result.latency_ns <= 70
    assert result.path == PATH_CTE_HIT
    assert controller.dram_used_bytes() == 16 * PAGE_SIZE


# ----------------------------------------------------------------------
# Compresso
# ----------------------------------------------------------------------

def test_compresso_serial_cte_penalty(system, dram, graph_model):
    controller = CompressoController(system, dram)
    ppns, hotness = make_pages(64)
    controller.initialize(ppns, hotness, [], graph_model)
    cold = controller.serve_l3_miss(ppns[0], 0, now_ns=0.0)
    assert cold.path == PATH_SERIAL_NO_CTE
    warm = controller.serve_l3_miss(ppns[0], 1, now_ns=1000.0)
    assert warm.path == PATH_CTE_HIT
    assert cold.latency_ns > warm.latency_ns + 20  # serial CTE fetch cost


def test_compresso_saves_memory_on_compressible_data(system, dram, graph_model):
    controller = CompressoController(system, dram)
    ppns, hotness = make_pages(256)
    controller.initialize(ppns, hotness, [], graph_model)
    assert controller.dram_used_bytes() < 256 * PAGE_SIZE


def test_compresso_metadata_overhead_is_64b_per_page(system, dram, graph_model):
    controller = CompressoController(system, dram)
    ppns, hotness = make_pages(100)
    controller.initialize(ppns, hotness, [], graph_model)
    chunked = controller.dram_used_bytes() - 100 * 64
    assert chunked % 512 == 0


def test_compresso_writeback_repacks_occasionally(system, dram, graph_model):
    controller = CompressoController(system, dram, seed=3)
    ppns, hotness = make_pages(8)
    controller.initialize(ppns, hotness, [], graph_model)
    for i in range(500):
        controller.serve_writeback(ppns[i % 8], i % 64, now_ns=float(i))
    assert controller.stats.counter("repacks").value > 0


# ----------------------------------------------------------------------
# Two-level placement
# ----------------------------------------------------------------------

def init_twolevel(system, dram, model, pages=256, budget_pages=200,
                  cls=TwoLevelController):
    controller = cls(system, dram)
    ppns, hotness = make_pages(pages)
    controller.initialize(ppns, hotness, [], model,
                          dram_budget_bytes=budget_pages * PAGE_SIZE)
    return controller, ppns


def test_twolevel_unbudgeted_keeps_everything_ml1(system, dram, graph_model):
    controller = TwoLevelController(system, dram)
    ppns, hotness = make_pages(64)
    controller.initialize(ppns, hotness, [], graph_model)
    assert controller.ml2_page_count == 0
    assert controller.ml1_page_count == 64


def test_twolevel_budget_pushes_cold_pages_to_ml2(system, dram, graph_model):
    controller, ppns = init_twolevel(system, dram, graph_model)
    assert controller.ml2_page_count > 0
    assert controller.ml1_page_count + controller.ml2_page_count == 256
    # The hottest page is in ML1; the coldest is in ML2.
    assert not controller._cte[ppns[0]].in_ml2
    assert controller._cte[ppns[-1]].in_ml2


def test_twolevel_respects_budget(system, dram, graph_model):
    budget = 200 * PAGE_SIZE
    controller, _ = init_twolevel(system, dram, graph_model, budget_pages=200)
    assert controller.dram_used_bytes() <= budget


def test_twolevel_tighter_budget_means_more_ml2(system, dram, graph_model):
    loose, _ = init_twolevel(system, dram, graph_model, budget_pages=220)
    from repro.dram.system import DRAMSystem
    tight, _ = init_twolevel(system, DRAMSystem(), graph_model, budget_pages=150)
    assert tight.ml2_page_count > loose.ml2_page_count


def test_twolevel_budget_too_small_raises(system, dram, graph_model):
    controller = TwoLevelController(system, dram)
    ppns, hotness = make_pages(256)
    with pytest.raises(ValueError):
        controller.initialize(ppns, hotness, [], graph_model,
                              dram_budget_bytes=10 * PAGE_SIZE)


def test_twolevel_ml2_access_migrates_to_ml1(system, dram, graph_model):
    controller, ppns = init_twolevel(system, dram, graph_model)
    cold = ppns[-1]
    assert controller._cte[cold].in_ml2
    result = controller.serve_l3_miss(cold, 0, now_ns=0.0)
    assert result.in_ml2
    assert result.latency_ns > 100  # decompression dominates
    assert not controller._cte[cold].in_ml2  # migrated to ML1
    assert controller.stats.counter("ml2_to_ml1_migrations").value == 1


def test_twolevel_ml1_access_is_fast(system, dram, graph_model):
    controller, ppns = init_twolevel(system, dram, graph_model)
    hot = ppns[0]
    result = controller.serve_l3_miss(hot, 0, now_ns=0.0)
    assert not result.in_ml2
    assert result.latency_ns < 120


def test_twolevel_migration_pressure_triggers_eviction(system, dram, graph_model):
    controller, ppns = init_twolevel(system, dram, graph_model,
                                     budget_pages=180)
    before_free = controller.ml1_free.count
    # Touch many cold ML2 pages to force migrations and the eviction pump.
    cold_pages = [p for p in ppns if controller._cte[p].in_ml2][:40]
    now = 0.0
    for ppn in cold_pages:
        controller.serve_l3_miss(ppn, 0, now_ns=now)
        now += 10_000.0
    assert controller.stats.counter("ml1_to_ml2_evictions").value > 0
    assert controller.ml1_free.count >= min(
        before_free, system.ml1_critical_watermark
    )


def test_twolevel_serial_translation_on_cte_miss(system, dram, graph_model):
    controller, ppns = init_twolevel(system, dram, graph_model)
    controller.cte_cache.flush()
    result = controller.serve_l3_miss(ppns[0], 0, now_ns=0.0)
    assert result.path == PATH_SERIAL_NO_CTE
    assert controller.stats.counter("cte_dram_fetches").value == 1


# ----------------------------------------------------------------------
# OS-inspired vs TMCC ML2 engines
# ----------------------------------------------------------------------

def test_osinspired_ml2_latency_is_ibm_slow(system, graph_model):
    from repro.dram.system import DRAMSystem

    slow, ppns_a = init_twolevel(system, DRAMSystem(), graph_model,
                                 cls=OSInspiredController)
    fast, ppns_b = init_twolevel(system, DRAMSystem(), graph_model,
                                 cls=TMCCController)
    cold_a = next(p for p in ppns_a if slow._cte[p].in_ml2)
    cold_b = next(p for p in ppns_b if fast._cte[p].in_ml2)
    lat_slow = slow.serve_l3_miss(cold_a, 0, 0.0).latency_ns
    lat_fast = fast.serve_l3_miss(cold_b, 0, 0.0).latency_ns
    assert lat_slow > lat_fast + 400  # ~878 ns vs ~140 ns half-page


# ----------------------------------------------------------------------
# TMCC embedded CTEs
# ----------------------------------------------------------------------

def uniform_ptb_for(ppns):
    return [make_pte(p, STATUS_DEFAULT_DATA) for p in ppns]


def test_tmcc_parallel_path_after_ptb_fetch(system, dram, graph_model):
    controller, ppns = init_twolevel(system, dram, graph_model,
                                     cls=TMCCController)
    hot = ppns[:8]
    controller.note_ptb_fetch(1, 0x1000, uniform_ptb_for(hot), huge_leaf=False)
    controller.cte_cache.flush()
    result = controller.serve_l3_miss(hot[0], 0, now_ns=0.0)
    assert result.path == PATH_PARALLEL_OK
    # Parallel: latency ~ one DRAM access, not two.
    assert result.latency_ns < 90


def test_tmcc_serial_without_walk(system, dram, graph_model):
    controller, ppns = init_twolevel(system, dram, graph_model,
                                     cls=TMCCController)
    controller.cte_cache.flush()
    result = controller.serve_l3_miss(ppns[0], 0, now_ns=0.0)
    assert result.path == PATH_SERIAL_NO_CTE


def test_tmcc_mismatch_detected_and_repaired(system, dram, graph_model):
    controller, ppns = init_twolevel(system, dram, graph_model,
                                     cls=TMCCController)
    hot = ppns[:8]
    controller.note_ptb_fetch(1, 0x1000, uniform_ptb_for(hot), huge_leaf=False)
    # Migrate hot[0] behind the PTB's back: change its CTE.
    controller._cte[hot[0]].dram_page += 1
    controller.cte_cache.flush()
    result = controller.serve_l3_miss(hot[0], 0, now_ns=0.0)
    assert result.path == PATH_PARALLEL_MISMATCH
    assert controller.stats.counter("embedded_repairs").value == 1
    # After the lazy repair, the next CTE-cache miss verifies clean.
    controller.cte_cache.flush()
    result = controller.serve_l3_miss(hot[0], 0, now_ns=1000.0)
    assert result.path == PATH_PARALLEL_OK


def test_tmcc_huge_leaf_ptbs_are_not_harvested(system, dram, graph_model):
    controller, ppns = init_twolevel(system, dram, graph_model,
                                     cls=TMCCController)
    controller.note_ptb_fetch(2, 0x2000, uniform_ptb_for(ppns[:8]),
                              huge_leaf=True)
    controller.cte_cache.flush()
    result = controller.serve_l3_miss(ppns[0], 0, now_ns=0.0)
    assert result.path == PATH_SERIAL_NO_CTE


def test_tmcc_incompressible_ptb_gives_no_embedding(system, dram, graph_model):
    controller, ppns = init_twolevel(system, dram, graph_model,
                                     cls=TMCCController)
    ptes = uniform_ptb_for(ppns[:8])
    ptes[0] |= 1 << 6  # divergent dirty bit: PTB not compressible
    controller.note_ptb_fetch(1, 0x3000, ptes, huge_leaf=False)
    assert controller.stats.counter("ptbs_incompressible").value == 1
    controller.cte_cache.flush()
    result = controller.serve_l3_miss(ppns[1], 0, now_ns=0.0)
    assert result.path == PATH_SERIAL_NO_CTE


def test_tmcc_cte_buffer_capacity_is_64(system, dram, graph_model):
    from repro.core.tmcc import CTE_BUFFER_ENTRIES

    controller, ppns = init_twolevel(system, dram, graph_model,
                                     cls=TMCCController)
    for start in range(0, 128, 8):
        group = ppns[start:start + 8]
        if len(group) == 8:
            controller.note_ptb_fetch(1, 0x4000 + start * 8,
                                      uniform_ptb_for(group), huge_leaf=False)
    assert len(controller._cte_buffer) <= CTE_BUFFER_ENTRIES


def test_tmcc_embedded_coverage_metric(system, dram, graph_model):
    controller, ppns = init_twolevel(system, dram, graph_model,
                                     cls=TMCCController)
    controller.note_ptb_fetch(1, 0x1000, uniform_ptb_for(ppns[:8]),
                              huge_leaf=False)
    controller.cte_cache.flush()
    controller.serve_l3_miss(ppns[0], 0, 0.0)   # parallel
    controller.cte_cache.flush()
    # A ML1 page the walker never covered: serial path.
    unwalked = next(p for p in ppns[8:] if not controller._cte[p].in_ml2)
    controller.serve_l3_miss(unwalked, 0, 0.0)
    assert controller.embedded_coverage == pytest.approx(0.5)


def test_fastml2_is_serial_but_fast(system, graph_model):
    """The Figure 20 ablation point: OS-inspired translation (serial CTE
    fetch, no embedded CTEs) but the memory-specialized Deflate for ML2."""
    from repro.core.osinspired import OSInspiredFastDeflateController
    from repro.dram.system import DRAMSystem

    controller, ppns = init_twolevel(system, DRAMSystem(), graph_model,
                                     cls=OSInspiredFastDeflateController)
    # Serial translation: no parallel path even after a PTB fetch.
    controller.note_ptb_fetch(1, 0x1000, uniform_ptb_for(ppns[:8]),
                              huge_leaf=False)
    controller.cte_cache.flush()
    result = controller.serve_l3_miss(ppns[0], 0, 0.0)
    assert result.path == PATH_SERIAL_NO_CTE
    # Fast ML2: a cold page decompresses in the memory-specialized range.
    cold = next(p for p in ppns if controller._cte[p].in_ml2)
    ml2 = controller.serve_l3_miss(cold, 0, 1000.0)
    assert ml2.latency_ns < 600  # IBM-speed would exceed ~900 ns


def test_three_controllers_form_a_latency_ladder(system, graph_model):
    """ML2 access cost: OS-inspired (IBM) > fast-ML2 > never for ML1."""
    from repro.core.osinspired import (
        OSInspiredController,
        OSInspiredFastDeflateController,
    )
    from repro.dram.system import DRAMSystem

    latencies = {}
    for cls in (OSInspiredController, OSInspiredFastDeflateController):
        controller, ppns = init_twolevel(system, DRAMSystem(), graph_model,
                                         cls=cls)
        cold = next(p for p in ppns if controller._cte[p].in_ml2)
        latencies[cls.__name__] = controller.serve_l3_miss(cold, 0, 0.0).latency_ns
    assert latencies["OSInspiredController"] > \
        latencies["OSInspiredFastDeflateController"] + 300


def test_priority_flip_under_critical_pressure(system, graph_model):
    """Section VI: once the free list drops below the critical watermark,
    eviction work runs ahead of demand ML2 accesses and slows them."""
    import dataclasses

    from repro.dram.system import DRAMSystem

    pressured = dataclasses.replace(system, ml1_critical_watermark=10**9)
    relaxed = dataclasses.replace(system, ml1_critical_watermark=0)

    def ml2_latency(config):
        controller, ppns = init_twolevel(config, DRAMSystem(), graph_model,
                                         budget_pages=180)
        # Monkey-patch config via the controller's config reference.
        cold = [p for p in ppns if controller._cte[p].in_ml2][:20]
        total = 0.0
        now = 0.0
        for ppn in cold:
            total += controller.serve_l3_miss(ppn, 0, now).latency_ns
            now += 50_000.0
        return total, controller

    slow_total, slow_ctl = ml2_latency(pressured)
    fast_total, fast_ctl = ml2_latency(relaxed)
    assert slow_ctl.stats.counter("priority_flips").value > 0
    assert fast_ctl.stats.counter("priority_flips").value == 0
    assert slow_total > fast_total
