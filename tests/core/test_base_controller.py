"""Tests for the base controller plumbing shared by all designs."""

from repro.core.base import (
    MemoryController,
    PATH_CTE_HIT,
    PATH_ML2,
    PATH_PARALLEL_MISMATCH,
    PATH_PARALLEL_OK,
    PATH_SERIAL_NO_CTE,
)
from repro.dram.system import DRAMSystem

from tests.core.conftest import make_pages
import pytest


def build(system, model, pages=8):
    controller = MemoryController(system, DRAMSystem())
    ppns, hotness = make_pages(pages)
    controller.initialize(ppns, hotness, [900, 901], model)
    return controller, ppns


def test_table_pages_precede_data_pages(system, graph_model):
    controller, ppns = build(system, graph_model)
    # Table pages got the lowest DRAM frames.
    assert controller._dram_page[900] == 0
    assert controller._dram_page[901] == 1
    assert controller._dram_page[ppns[0]] == 2


def test_data_addresses_are_page_disjoint(system, graph_model):
    controller, ppns = build(system, graph_model)
    addresses = {controller._data_address(ppn, 0) for ppn in ppns}
    assert len(addresses) == len(ppns)
    for ppn in ppns:
        assert controller._data_address(ppn, 1) == \
            controller._data_address(ppn, 0) + 64


def test_cte_table_lives_above_data(system, graph_model):
    controller, ppns = build(system, graph_model)
    top_data = max(controller._data_address(p, 63) for p in ppns)
    assert controller._cte_address(ppns[0], 8) > top_data


def test_path_fractions_sum_to_one(system, graph_model):
    controller, ppns = build(system, graph_model)
    for path in (PATH_CTE_HIT, PATH_CTE_HIT, PATH_PARALLEL_OK,
                 PATH_PARALLEL_MISMATCH, PATH_SERIAL_NO_CTE, PATH_ML2):
        controller._record_path(path)
    fractions = controller.path_fractions()
    assert sum(fractions.values()) == pytest.approx(1.0)
    assert fractions[PATH_CTE_HIT] == pytest.approx(2 / 6)


def test_path_fractions_empty_is_zero(system, graph_model):
    controller, _ = build(system, graph_model)
    fractions = controller.path_fractions()
    assert all(v == 0.0 for v in fractions.values())


def test_writebacks_count_and_post(system, graph_model):
    controller, ppns = build(system, graph_model)
    controller.serve_writeback(ppns[0], 5, now_ns=0.0)
    assert controller.stats.counter("writebacks").value == 1
    assert controller.dram.stats.counter("writes").value == 1


def test_average_miss_latency_tracks_histogram(system, graph_model):
    controller, ppns = build(system, graph_model)
    controller.serve_l3_miss(ppns[0], 0, 0.0)
    controller.serve_l3_miss(ppns[1], 0, 1000.0)
    assert controller.average_miss_latency_ns > 0
    assert controller.stats.histogram("miss_latency_ns").count == 2
