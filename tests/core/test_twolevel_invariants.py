"""Property tests: two-level controller invariants under random traffic.

Whatever sequence of misses and writebacks arrives, the controller must
preserve:

1. every data page is in exactly one level (its CTE says ML1 xor ML2);
2. no two ML1 pages share a DRAM chunk;
3. total chunks are conserved (free + ML1 pages + ML2 super-chunks);
4. correctness: a served miss always reflects the page's *current*
   location, even right after migrations (TMCC's verify guarantees this).
"""

from hypothesis import given, settings, strategies as st

from repro.core.compmodel import PageCompressionModel
from repro.core.config import SystemConfig
from repro.core.tmcc import TMCCController
from repro.core.twolevel import TwoLevelController
from repro.dram.system import DRAMSystem
from repro.vm.pte import STATUS_DEFAULT_DATA, make_pte
from repro.workloads.content import ContentSynthesizer

PAGES = 160
BUDGET_PAGES = 120

_MODEL = PageCompressionModel(ContentSynthesizer("graph", seed=11).page,
                              sample_pages=6, seed=11)


def build(controller_cls=TwoLevelController):
    controller = controller_cls(SystemConfig(), DRAMSystem())
    ppns = list(range(100, 100 + PAGES))
    hotness = {ppn: rank for rank, ppn in enumerate(ppns)}
    controller.initialize(ppns, hotness, [], _MODEL,
                          dram_budget_bytes=BUDGET_PAGES * 4096)
    return controller, ppns


def check_invariants(controller, ppns):
    # 1. exactly one level per page.
    ml1 = [p for p in ppns if not controller._cte[p].in_ml2]
    ml2 = [p for p in ppns if controller._cte[p].in_ml2]
    assert len(ml1) + len(ml2) == PAGES
    # ML2 pages have a sub-chunk; ML1 pages do not.
    for ppn in ml2:
        assert ppn in controller._subchunk
    for ppn in ml1:
        assert ppn not in controller._subchunk
    # 2. ML1 chunk uniqueness.
    chunks = [controller._dram_page[p] for p in ml1]
    assert len(chunks) == len(set(chunks))
    # 3. chunk conservation.
    superchunks = {id(s.superchunk): s.superchunk
                   for s in controller._subchunk.values()}
    for stacks in controller.ml2_free._lists.values():
        for sc in stacks:
            superchunks[id(sc)] = sc
    ml2_chunks = sum(len(sc.chunk_ids) for sc in superchunks.values())
    total = controller.ml1_free.count + len(ml1) + ml2_chunks
    assert total == controller._budget_chunks


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=PAGES - 1),
                          st.booleans()),
                min_size=1, max_size=150))
def test_invariants_hold_under_random_misses(operations):
    controller, ppns = build()
    now = 0.0
    for index, write in operations:
        controller.serve_l3_miss(ppns[index], index % 64, now, is_write=write)
        now += 500.0
    check_invariants(controller, ppns)


@settings(max_examples=15, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=PAGES - 1),
                min_size=1, max_size=100))
def test_tmcc_invariants_with_walk_interleaving(indices):
    """TMCC with PTB harvesting interleaved among misses."""
    controller, ppns = build(TMCCController)
    now = 0.0
    for step, index in enumerate(indices):
        if step % 7 == 0:
            group = ppns[(index // 8) * 8:(index // 8) * 8 + 8]
            if len(group) == 8:
                ptes = [make_pte(p, STATUS_DEFAULT_DATA) for p in group]
                controller.note_ptb_fetch(1, 0x10_000 + (index // 8) * 64,
                                          ptes, huge_leaf=False)
        controller.serve_l3_miss(ppns[index], index % 64, now)
        now += 800.0
    check_invariants(controller, ppns)


@settings(max_examples=10, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=PAGES - 1),
                min_size=30, max_size=120))
def test_served_location_is_always_current(indices):
    """After any history, serving a miss reflects the page's CTE *now*:
    an ML2 page migrates on access, and the immediately following access
    is an ML1 access."""
    controller, ppns = build(TMCCController)
    now = 0.0
    for index in indices:
        ppn = ppns[index]
        was_ml2 = controller._cte[ppn].in_ml2
        result = controller.serve_l3_miss(ppn, 0, now)
        assert result.in_ml2 == was_ml2
        if was_ml2 and not controller.stats.counter(
                "migration_failed").value:
            follow_up = controller.serve_l3_miss(ppn, 1, now + 1.0)
            assert not follow_up.in_ml2
        now += 1500.0


def test_writebacks_never_corrupt_state():
    controller, ppns = build()
    now = 0.0
    for i in range(2000):
        ppn = ppns[i % PAGES]
        controller.serve_writeback(ppn, i % 64, now)
        if i % 13 == 0:
            controller.serve_l3_miss(ppn, 0, now)
        now += 100.0
    check_invariants(controller, ppns)
