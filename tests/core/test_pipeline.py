"""Unit and property tests for the access-pipeline latency algebra."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.pipeline import (
    STAGE_CTE_FETCH,
    STAGE_DATA_FETCH,
    Stage,
    StageAccounting,
    cond,
    defer,
    evaluate,
    parallel,
    serial,
)

#: Non-negative stage latencies with fp values a DRAM model would emit.
latencies = st.floats(min_value=0.0, max_value=1e6,
                      allow_nan=False, allow_infinity=False)


def stages(values):
    return [Stage(f"s{i}", v) for i, v in enumerate(values)]


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------


@given(st.lists(latencies, min_size=1, max_size=8))
def test_serial_sums_left_to_right(values):
    """serial() totals exactly the left-to-right float sum -- the same
    association the hand-written ``a + b + c`` code used."""
    timeline = evaluate(serial(*stages(values)))
    assert timeline.total_ns == sum(values, 0.0)


@given(st.lists(latencies, min_size=1, max_size=6), latencies, latencies)
def test_serial_associative(values, extra_a, extra_b):
    """Nesting serial() inside serial() preserves the total (up to fp
    re-association, which nesting necessarily introduces)."""
    flat = evaluate(serial(*stages(values + [extra_a, extra_b])))
    nested = evaluate(serial(*stages(values),
                             serial(Stage("a", extra_a), Stage("b", extra_b))))
    assert math.isclose(flat.total_ns, nested.total_ns,
                        rel_tol=1e-12, abs_tol=1e-9)
    assert flat.stage_names().count("s0") == nested.stage_names().count("s0")


@given(st.lists(latencies, min_size=1, max_size=8))
def test_parallel_takes_max(values):
    timeline = evaluate(parallel(*stages(values)))
    assert timeline.total_ns == max(values)


@given(st.lists(latencies, min_size=2, max_size=8), st.randoms())
def test_parallel_commutative(values, rng):
    """Branch order never changes a parallel node's duration."""
    shuffled = list(values)
    rng.shuffle(shuffled)
    assert (evaluate(parallel(*stages(values))).total_ns
            == evaluate(parallel(*stages(shuffled))).total_ns)


@given(st.lists(latencies, min_size=1, max_size=5),
       st.lists(latencies, min_size=1, max_size=5))
def test_nesting_preserves_total(serial_values, parallel_values):
    """A serial chain ending in a parallel fan-out totals chain + max."""
    timeline = evaluate(serial(*stages(serial_values),
                               parallel(*stages(parallel_values))))
    expected = sum(serial_values, 0.0) + max(parallel_values)
    assert math.isclose(timeline.total_ns, expected,
                        rel_tol=1e-12, abs_tol=1e-9)


@given(st.lists(latencies, min_size=1, max_size=8), latencies)
def test_critical_spans_sum_to_total(values, start):
    """Critical-path spans of a parallel node account for the total."""
    timeline = evaluate(parallel(*stages(values)), start)
    critical = [s for s in timeline.spans if s.critical]
    assert math.isclose(sum(s.latency_ns for s in critical),
                        timeline.total_ns, rel_tol=1e-12, abs_tol=1e-9)
    assert timeline.start_ns == start
    assert timeline.end_ns == start + timeline.total_ns


# ----------------------------------------------------------------------
# Span bookkeeping
# ----------------------------------------------------------------------


def test_spans_record_start_end():
    timeline = evaluate(serial(Stage("a", 10.0), Stage("b", 5.0)), 100.0)
    a, b = timeline.spans
    assert (a.start_ns, a.end_ns) == (100.0, 110.0)
    assert (b.start_ns, b.end_ns) == (110.0, 115.0)
    assert timeline.span("b") is b
    assert timeline.span("missing") is None


def test_callable_latency_receives_start_time():
    seen = []

    def lat(start_ns):
        seen.append(start_ns)
        return 7.0

    evaluate(serial(Stage("a", 3.0), Stage("b", lat), Stage("c", lat)), 50.0)
    assert seen == [53.0, 60.0]


def test_side_effects_run_in_declaration_order():
    order = []
    node = serial(
        Stage("a", lambda s: order.append("a") or 1.0),
        parallel(Stage("b", lambda s: order.append("b") or 2.0),
                 Stage("c", lambda s: order.append("c") or 3.0)),
        Stage("d", lambda s: order.append("d") or 4.0),
    )
    evaluate(node)
    assert order == ["a", "b", "c", "d"]


def test_parallel_marks_losers_with_slack():
    timeline = evaluate(parallel(Stage("slow", 30.0), Stage("fast", 10.0)))
    slow, fast = timeline.span("slow"), timeline.span("fast")
    assert slow.critical and not fast.critical
    assert fast.slack_ns == 20.0
    assert timeline.total_ns == 30.0


def test_wasted_stage_attribution():
    timeline = evaluate(parallel(Stage("spec", 40.0, wasted=True),
                                 Stage("verify", 25.0)))
    assert timeline.wasted_ns() == 40.0
    assert timeline.span("spec").wasted


def test_unrecorded_stage_runs_but_leaves_no_span():
    ran = []
    node = serial(Stage("visible", 5.0),
                  Stage("hidden", lambda s: ran.append(s) or 3.0,
                        record=False))
    timeline = evaluate(node)
    assert ran == [5.0]
    assert timeline.total_ns == 8.0
    assert timeline.stage_names() == ["visible"]


def test_cond_and_defer():
    assert evaluate(cond(True, Stage("t", 4.0), Stage("f", 9.0))).total_ns == 4.0
    assert evaluate(cond(False, Stage("t", 4.0), Stage("f", 9.0))).total_ns == 9.0
    assert evaluate(cond(False, Stage("t", 4.0))).total_ns == 0.0

    bases = []

    def build(start_ns):
        bases.append(start_ns)
        return Stage("late", 2.0)

    timeline = evaluate(serial(Stage("a", 6.0), defer(build)), 10.0)
    assert bases == [16.0]
    assert timeline.total_ns == 8.0


def test_validation():
    with pytest.raises(ValueError):
        Stage("", 1.0)
    with pytest.raises(ValueError):
        Stage("neg", -1.0)
    with pytest.raises(ValueError):
        parallel()


# ----------------------------------------------------------------------
# StageAccounting
# ----------------------------------------------------------------------


def test_accounting_shares_sum_to_one():
    acct = StageAccounting()
    acct.record("serial", evaluate(serial(Stage(STAGE_CTE_FETCH, 20.0),
                                          Stage(STAGE_DATA_FETCH, 30.0))))
    acct.record("hit", evaluate(Stage(STAGE_DATA_FETCH, 50.0)))
    rows = acct.breakdown()
    assert math.isclose(sum(row["share"] for row in rows), 1.0)
    assert acct.grand_total_ns() == 100.0
    assert acct.path_count("serial") == 1
    metrics = acct()
    assert metrics["serial.cte_fetch.mean_ns"] == 20.0
    assert metrics["hit.count"] == 1
    acct.reset()
    assert acct.breakdown() == []
    assert acct() == {}
