"""Failure-injection tests: the mechanisms that keep TMCC correct.

The speculative parallel access is only safe because the verifying CTE
read catches every stale embedded CTE.  These tests corrupt state on
purpose -- stale embedded CTEs, saturated migration buffers, starved free
lists -- and check the design degrades gracefully instead of serving
wrong data or wedging.
"""

import pytest

from repro.core.base import PATH_PARALLEL_MISMATCH, PATH_PARALLEL_OK
from repro.core.compmodel import PageCompressionModel
from repro.core.config import SystemConfig
from repro.core.tmcc import TMCCController
from repro.core.twolevel import TwoLevelController
from repro.dram.system import DRAMSystem
from repro.vm.pte import STATUS_DEFAULT_DATA, make_pte
from repro.workloads.content import ContentSynthesizer


@pytest.fixture(scope="module")
def model():
    return PageCompressionModel(ContentSynthesizer("graph", seed=21).page,
                                sample_pages=6, seed=21)


def build(model, cls=TMCCController, pages=200, budget_pages=150):
    controller = cls(SystemConfig(), DRAMSystem())
    ppns = list(range(500, 500 + pages))
    hotness = {ppn: rank for rank, ppn in enumerate(ppns)}
    controller.initialize(ppns, hotness, [], model,
                          dram_budget_bytes=budget_pages * 4096)
    return controller, ppns


def harvest(controller, group, ptb_address=0x9000):
    ptes = [make_pte(p, STATUS_DEFAULT_DATA) for p in group]
    controller.note_ptb_fetch(1, ptb_address, ptes, huge_leaf=False)


def test_every_corrupted_embedded_cte_is_caught(model):
    """Corrupt all eight embedded CTEs; each first use must take the
    mismatch path (never silently serve the wrong location) and each
    second use must be repaired."""
    controller, ppns = build(model)
    group = ppns[:8]
    harvest(controller, group)
    for offset, ppn in enumerate(group):
        controller._cte[ppn].dram_page ^= (offset + 1)  # corrupt
    now = 0.0
    for ppn in group:
        controller.cte_cache.flush()
        result = controller.serve_l3_miss(ppn, 0, now)
        assert result.path == PATH_PARALLEL_MISMATCH
        now += 100.0
    assert controller.stats.counter("embedded_repairs").value == 8
    for ppn in group:
        controller.cte_cache.flush()
        result = controller.serve_l3_miss(ppn, 0, now)
        assert result.path == PATH_PARALLEL_OK
        now += 100.0


def test_mismatch_costs_latency_but_never_correctness(model):
    controller, ppns = build(model)
    harvest(controller, ppns[:8])
    controller.cte_cache.flush()
    clean = controller.serve_l3_miss(ppns[1], 0, 0.0)
    controller._cte[ppns[0]].dram_page += 3
    controller.cte_cache.flush()
    dirty = controller.serve_l3_miss(ppns[0], 0, 1000.0)
    assert dirty.latency_ns > clean.latency_ns  # re-access penalty


def test_migration_buffer_saturation_stalls_but_recovers(model):
    """Hammer ML2 so all eight migration-buffer entries fill; accesses
    stall (Section VI) but continue to be served correctly."""
    controller, ppns = build(model, cls=TwoLevelController, pages=300,
                             budget_pages=180)
    cold = [p for p in ppns if controller._cte[p].in_ml2][:32]
    assert len(cold) >= 16
    # Fire all accesses at (nearly) the same instant.
    latencies = [controller.serve_l3_miss(p, 0, now_ns=float(i))
                 .latency_ns for i, p in enumerate(cold)]
    assert controller.migration.stalls.value > 0
    assert max(latencies) > min(latencies)
    # Migrations happened, and a migrated page serves as a fast ML1 hit.
    migrated = controller.stats.counter("ml2_to_ml1_migrations").value
    assert migrated > 0
    settled = next(p for p in cold if not controller._cte[p].in_ml2)
    check = controller.serve_l3_miss(settled, 1, now_ns=1e9)
    assert not check.in_ml2


def test_eviction_starvation_does_not_wedge(model):
    """Empty the recency list, then force migrations: the controller
    reports starvation/failures instead of crashing or losing pages."""
    controller, ppns = build(model, cls=TwoLevelController, pages=260,
                             budget_pages=170)
    while controller.recency.evict_coldest() is not None:
        pass
    cold = [p for p in ppns if controller._cte[p].in_ml2]
    now = 0.0
    for ppn in cold[:40]:
        controller.serve_l3_miss(ppn, 0, now)
        now += 50_000.0
    stats = controller.stats
    # Either the free-list reserve carried it, or starvation was recorded;
    # in no case did a page disappear.
    levels = [controller._cte[p].in_ml2 for p in ppns]
    assert len(levels) == 260
    assert (stats.counter("eviction_starved").value >= 0)


def test_unknown_page_misses_are_served_not_crashed(model):
    """I/O-space or late-mapped pages the controller never saw still get
    a DRAM access rather than a KeyError."""
    controller, _ = build(model)
    result = controller.serve_l3_miss(0xDEAD00, 0, 0.0)
    assert result.latency_ns > 0


def test_incompressible_page_eviction_is_skipped_not_fatal():
    """A controller whose every page is incompressible cannot evict; ML2
    misses must still be served (no infinite loop)."""
    import random

    rng = random.Random(3)
    incompressible_model = PageCompressionModel(
        lambda vpn: rng.randbytes(4096), sample_pages=3, seed=3
    )
    controller = TwoLevelController(SystemConfig(), DRAMSystem())
    ppns = list(range(50))
    hotness = {p: i for i, p in enumerate(ppns)}
    # Budget: everything fits in ML1 (incompressible pages must).
    controller.initialize(ppns, hotness, [], incompressible_model,
                          dram_budget_bytes=70 * 4096)
    controller._maybe_evict(0.0, force_one=True)
    assert controller.stats.counter("incompressible_retained").value >= 0
    result = controller.serve_l3_miss(ppns[0], 0, 0.0)
    assert result.latency_ns > 0
