"""Failure-injection tests: the mechanisms that keep TMCC correct.

The speculative parallel access is only safe because the verifying CTE
read catches every stale embedded CTE.  These tests corrupt state on
purpose -- stale embedded CTEs, saturated migration buffers, starved free
lists -- and check the design degrades gracefully instead of serving
wrong data or wedging.
"""

import pytest

from repro.common.errors import ConfigError
from repro.core.base import PATH_PARALLEL_MISMATCH, PATH_PARALLEL_OK
from repro.core.compmodel import PageCompressionModel
from repro.core.config import SystemConfig
from repro.core.tmcc import TMCCController
from repro.core.twolevel import TwoLevelController
from repro.dram.system import DRAMSystem
from repro.vm.pte import STATUS_DEFAULT_DATA, make_pte
from repro.workloads.content import ContentSynthesizer


@pytest.fixture(scope="module")
def model():
    return PageCompressionModel(ContentSynthesizer("graph", seed=21).page,
                                sample_pages=6, seed=21)


def build(model, cls=TMCCController, pages=200, budget_pages=150):
    controller = cls(SystemConfig(), DRAMSystem())
    ppns = list(range(500, 500 + pages))
    hotness = {ppn: rank for rank, ppn in enumerate(ppns)}
    controller.initialize(ppns, hotness, [], model,
                          dram_budget_bytes=budget_pages * 4096)
    return controller, ppns


def harvest(controller, group, ptb_address=0x9000):
    ptes = [make_pte(p, STATUS_DEFAULT_DATA) for p in group]
    controller.note_ptb_fetch(1, ptb_address, ptes, huge_leaf=False)


def test_every_corrupted_embedded_cte_is_caught(model):
    """Corrupt all eight embedded CTEs; each first use must take the
    mismatch path (never silently serve the wrong location) and each
    second use must be repaired."""
    controller, ppns = build(model)
    group = ppns[:8]
    harvest(controller, group)
    for offset, ppn in enumerate(group):
        controller._cte[ppn].dram_page ^= (offset + 1)  # corrupt
    now = 0.0
    for ppn in group:
        controller.cte_cache.flush()
        result = controller.serve_l3_miss(ppn, 0, now)
        assert result.path == PATH_PARALLEL_MISMATCH
        now += 100.0
    assert controller.stats.counter("embedded_repairs").value == 8
    for ppn in group:
        controller.cte_cache.flush()
        result = controller.serve_l3_miss(ppn, 0, now)
        assert result.path == PATH_PARALLEL_OK
        now += 100.0


def test_mismatch_costs_latency_but_never_correctness(model):
    controller, ppns = build(model)
    harvest(controller, ppns[:8])
    controller.cte_cache.flush()
    clean = controller.serve_l3_miss(ppns[1], 0, 0.0)
    controller._cte[ppns[0]].dram_page += 3
    controller.cte_cache.flush()
    dirty = controller.serve_l3_miss(ppns[0], 0, 1000.0)
    assert dirty.latency_ns > clean.latency_ns  # re-access penalty


def test_migration_buffer_saturation_stalls_but_recovers(model):
    """Hammer ML2 so all eight migration-buffer entries fill; accesses
    stall (Section VI) but continue to be served correctly."""
    controller, ppns = build(model, cls=TwoLevelController, pages=300,
                             budget_pages=180)
    cold = [p for p in ppns if controller._cte[p].in_ml2][:32]
    assert len(cold) >= 16
    # Fire all accesses at (nearly) the same instant.
    latencies = [controller.serve_l3_miss(p, 0, now_ns=float(i))
                 .latency_ns for i, p in enumerate(cold)]
    assert controller.migration.stalls.value > 0
    assert max(latencies) > min(latencies)
    # Migrations happened, and a migrated page serves as a fast ML1 hit.
    migrated = controller.stats.counter("ml2_to_ml1_migrations").value
    assert migrated > 0
    settled = next(p for p in cold if not controller._cte[p].in_ml2)
    check = controller.serve_l3_miss(settled, 1, now_ns=1e9)
    assert not check.in_ml2


def test_eviction_starvation_does_not_wedge(model):
    """Empty the recency list, then force migrations: the controller
    reports starvation/failures instead of crashing or losing pages."""
    controller, ppns = build(model, cls=TwoLevelController, pages=260,
                             budget_pages=170)
    while controller.recency.evict_coldest() is not None:
        pass
    cold = [p for p in ppns if controller._cte[p].in_ml2]
    now = 0.0
    for ppn in cold[:40]:
        controller.serve_l3_miss(ppn, 0, now)
        now += 50_000.0
    stats = controller.stats
    # Either the free-list reserve carried it, or starvation was recorded;
    # in no case did a page disappear.
    levels = [controller._cte[p].in_ml2 for p in ppns]
    assert len(levels) == 260
    assert (stats.counter("eviction_starved").value >= 0)


def test_unknown_page_misses_are_served_not_crashed(model):
    """I/O-space or late-mapped pages the controller never saw still get
    a DRAM access rather than a KeyError."""
    controller, _ = build(model)
    result = controller.serve_l3_miss(0xDEAD00, 0, 0.0)
    assert result.latency_ns > 0


def test_incompressible_page_eviction_is_skipped_not_fatal():
    """A controller whose every page is incompressible cannot evict; ML2
    misses must still be served (no infinite loop)."""
    import random

    rng = random.Random(3)
    incompressible_model = PageCompressionModel(
        lambda vpn: rng.randbytes(4096), sample_pages=3, seed=3
    )
    controller = TwoLevelController(SystemConfig(), DRAMSystem())
    ppns = list(range(50))
    hotness = {p: i for i, p in enumerate(ppns)}
    # Budget: everything fits in ML1 (incompressible pages must).
    controller.initialize(ppns, hotness, [], incompressible_model,
                          dram_budget_bytes=70 * 4096)
    controller._maybe_evict(0.0, force_one=True)
    assert controller.stats.counter("incompressible_retained").value >= 0
    result = controller.serve_l3_miss(ppns[0], 0, 0.0)
    assert result.latency_ns > 0


# ----------------------------------------------------------------------
# Declarative fault plans (repro.sim.faults)
# ----------------------------------------------------------------------

def run_with_plan(spec_text, budget_fraction=None, accesses=6000,
                  scale=0.12, seed=3):
    """One deterministic TMCC run under a fault plan; returns the result
    and the ``resilience.*`` metrics with the prefix stripped."""
    from repro.sim.faults import FaultPlan
    from repro.sim.simulator import Simulator
    from repro.workloads.suite import workload_by_name

    workload = workload_by_name("mcf", max_accesses=accesses, scale=scale)
    budget = None
    if budget_fraction is not None:
        budget = int(workload.footprint_pages * 4096 * budget_fraction)
    sim = Simulator(workload, controller="tmcc", seed=seed,
                    dram_budget_bytes=budget,
                    fault_plan=FaultPlan.parse(spec_text))
    result = sim.run()
    prefix = "resilience."
    resilience = {key[len(prefix):]: value
                  for key, value in result.metrics.items()
                  if key.startswith(prefix)}
    return result, resilience


def test_fault_plan_parse_round_trip():
    from repro.sim.faults import FaultPlan

    plan = FaultPlan.parse("stale_cte:0.05, dram_read_error:0.02:3@100-500")
    assert len(plan.specs) == 2
    spec = plan.specs[1]
    assert spec.kind == "dram_read_error"
    assert spec.rate == 0.02 and spec.burst == 3
    assert spec.start == 100 and spec.end == 500
    assert spec.active(100) and spec.active(499)
    assert not spec.active(99) and not spec.active(500)
    assert FaultPlan.parse(plan.describe()) == plan


def test_fault_plan_rejects_bad_specs():
    from repro.sim.faults import FaultPlan

    for text in ("bogus:0.1", "stale_cte:2.0", "stale_cte:0",
                 "stale_cte:0.1:0", "stale_cte@9-3", "stale_cte@x-y",
                 "stale_cte:0.1:2:9", ""):
        with pytest.raises(ConfigError):
            FaultPlan.parse(text)


def test_injected_stale_cte_takes_mismatch_path_then_repairs(model):
    """The injection hook plants a stale embedded CTE; the next access
    must take the verify-mismatch replay path, repair the entry, and
    serve the one after that speculatively again."""

    class PickFirst:
        def choice(self, candidates):
            return candidates[0]

    controller, ppns = build(model)
    harvest(controller, ppns[:8])
    ppn = controller.inject_stale_cte(PickFirst())
    assert ppn is not None
    mismatch = controller.serve_l3_miss(ppn, 0, 0.0)
    assert mismatch.path == PATH_PARALLEL_MISMATCH
    assert controller.resilience.stats.counter("cte_repairs").value == 1
    controller.cte_cache.flush()
    repaired = controller.serve_l3_miss(ppn, 0, 100.0)
    assert repaired.path == PATH_PARALLEL_OK


def test_stale_cte_fault_forces_verify_and_repair():
    """Acceptance: injected stale embedded CTEs are caught by the verify
    fetch (mismatch replay) and repaired, never served wrong."""
    result, resilience = run_with_plan("stale_cte:0.05",
                                       budget_fraction=0.7)
    assert resilience["faults.stale_cte"] > 0
    assert resilience["cte_repairs"] > 0
    assert not result.truncated


def test_ml2_exhaustion_degrades_gracefully_with_emergency_evictions():
    """Acceptance: stealing every free ML1 chunk mid-run completes
    without raising and reports the emergency-eviction response."""
    result, resilience = run_with_plan("ml2_exhaustion:0.1",
                                       budget_fraction=0.6)
    assert resilience["faults.ml2_exhaustion"] > 0
    assert resilience["chunks_stolen"] > 0
    assert resilience["emergency_evictions"] > 0
    assert resilience["overflow_uncompressed"] > 0
    assert not result.truncated
    assert result.accesses > 0


def test_dram_read_error_retries_are_bounded():
    _, small = run_with_plan("dram_read_error:0.02:2")
    assert small["dram_retries"] > 0
    assert "dram_retry_exhausted" not in small  # burst 2 < retry cap
    _, big = run_with_plan("dram_read_error:0.02:8")
    assert big["dram_retry_exhausted"] > 0  # burst 8 > retry cap


def test_incompressible_burst_overflows_to_uncompressed():
    """Burst-incompressible victims are retained uncompressed; the
    exhaustion spec supplies the capacity pressure that makes the
    eviction pump actually visit them."""
    _, resilience = run_with_plan(
        "incompressible_burst:0.05:8,ml2_exhaustion:0.05",
        budget_fraction=0.7)
    assert resilience["faults.incompressible_burst"] > 0
    assert resilience["incompressible_forced"] > 0
    assert resilience["overflow_uncompressed"] > 0


def test_migration_saturation_and_cache_invalidation_land():
    _, resilience = run_with_plan(
        "migration_saturation:0.02:4,cte_cache_invalidate:0.02",
        budget_fraction=0.7)
    assert resilience["faults.migration_saturation"] > 0
    assert resilience["faults.cte_cache_invalidate"] > 0


def test_fault_injection_is_deterministic():
    spec = "stale_cte:0.03,dram_read_error:0.02:2,ml2_exhaustion:0.05"
    first = run_with_plan(spec, budget_fraction=0.6)
    second = run_with_plan(spec, budget_fraction=0.6)
    assert first[0].as_dict() == second[0].as_dict()
    assert first[1] == second[1]


def test_dormant_fault_plan_is_bit_identical_to_baseline():
    """A plan whose window never opens must not perturb the run: the
    latency stream stays bit-identical to a plain simulation."""
    from repro.sim.simulator import Simulator
    from repro.workloads.suite import workload_by_name

    workload = workload_by_name("mcf", max_accesses=6000, scale=0.12)
    baseline = Simulator(workload, controller="tmcc", seed=3).run()
    dormant, resilience = run_with_plan("stale_cte:0.5@1000000-1000001")
    assert resilience.get("faults_injected", 0) == 0
    base_dict = baseline.as_dict()
    dormant_dict = dormant.as_dict()
    base_dict.pop("metrics")
    dormant_dict.pop("metrics")
    assert repr(dormant_dict) == repr(base_dict)


def test_every_fault_kind_smokes_on_every_controller():
    """CI's smoke matrix in miniature: each fault kind on each registered
    controller, short runs, no exceptions allowed."""
    from repro.core import available_controllers
    from repro.sim.faults import plans_for_smoke
    from repro.sim.simulator import Simulator
    from repro.workloads.suite import workload_by_name

    for controller in available_controllers():
        for plan in plans_for_smoke(rate=0.05):
            workload = workload_by_name("omnetpp", max_accesses=2000,
                                        scale=0.05)
            sim = Simulator(workload, controller=controller, seed=2,
                            fault_plan=plan)
            result = sim.run()
            assert result.accesses > 0
            assert not result.truncated
