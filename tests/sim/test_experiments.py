"""Integration tests for the experiment protocols."""

import pytest

from repro.sim.experiments import (
    iso_capacity_comparison,
    iso_performance_capacity,
    osinspired_split,
    run_workload,
)
from repro.workloads.suite import workload_by_name


@pytest.fixture(scope="module")
def workload():
    return workload_by_name("mcf", max_accesses=50_000, scale=0.25)


def test_iso_capacity_protocol(workload):
    iso = iso_capacity_comparison(workload)
    # Budgets match: TMCC saves the same memory as Compresso.
    assert iso.tmcc.dram_used_bytes <= iso.budget_bytes * 1.02
    # TMCC wins on latency (the paper's Figure 17/18 story).
    assert iso.tmcc.avg_l3_miss_latency_ns < iso.compresso.avg_l3_miss_latency_ns
    assert iso.speedup > 1.0


def test_iso_performance_protocol(workload):
    iso = iso_performance_capacity(workload, search_steps=3)
    # TMCC ends at a smaller-or-equal DRAM usage with >= floor performance.
    assert iso.tmcc.dram_used_bytes <= iso.compresso.dram_used_bytes
    assert iso.normalized_ratio >= 1.0
    assert iso.tmcc_ratio > iso.compresso_ratio * 0.99


def test_osinspired_split_protocol(workload):
    compresso = run_workload(workload, "compresso")
    split = osinspired_split(workload, compresso.dram_used_bytes)
    # TMCC at least matches the bare-bone design; the two optimizations
    # each contribute non-negatively (Figure 20).
    assert split.total_speedup >= 0.99
    assert split.ml1_speedup >= 0.95
    assert split.ml2_speedup >= 0.95


def test_shared_model_keeps_usage_comparable(workload):
    """Compresso vs TMCC use the same per-page measurements."""
    iso = iso_capacity_comparison(workload, seed=3)
    assert iso.compresso.footprint_bytes == iso.tmcc.footprint_bytes
