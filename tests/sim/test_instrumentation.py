"""Unit tests for the event bus, probes, and the metrics registry."""

import json

import pytest

from repro.common.stats import Counter, Histogram, RatioStat, StatGroup
from repro.sim.instrument import (
    Event,
    EventBus,
    MetricsRegistry,
    Probe,
    nest_metrics,
)


# ----------------------------------------------------------------------
# EventBus
# ----------------------------------------------------------------------

def test_bus_inactive_without_subscribers():
    bus = EventBus()
    assert not bus.active
    bus.publish("x", 0.0, a=1)  # no-op, no error


def test_bus_kind_subscription():
    bus = EventBus()
    seen = []
    bus.subscribe("tlb_miss", seen.append)
    assert bus.active
    bus.publish("tlb_miss", 5.0, vpn=3)
    bus.publish("other", 6.0)
    assert len(seen) == 1
    assert seen[0] == Event("tlb_miss", 5.0, {"vpn": 3})
    assert seen[0].as_dict() == {"kind": "tlb_miss", "time_ns": 5.0, "vpn": 3}


def test_bus_subscribe_all_and_unsubscribe():
    bus = EventBus()
    seen = []
    bus.subscribe_all(seen.append)
    bus.publish("a", 1.0)
    bus.publish("b", 2.0)
    assert [e.kind for e in seen] == ["a", "b"]
    bus.unsubscribe_all()
    assert not bus.active
    bus.publish("c", 3.0)
    assert len(seen) == 2


def test_bus_unsubscribe_by_kind():
    bus = EventBus()
    seen = []
    bus.subscribe("a", seen.append)
    bus.subscribe("b", seen.append)
    assert bus.unsubscribe(seen.append, kind="a")
    bus.publish("a", 1.0)
    bus.publish("b", 2.0)
    assert [e.kind for e in seen] == ["b"]
    # The empty "a" list is pruned, so only "b" keeps the bus active.
    assert bus.unsubscribe(seen.append, kind="b")
    assert not bus.active


def test_bus_unsubscribe_everywhere():
    bus = EventBus()
    seen = []
    bus.subscribe("a", seen.append)
    bus.subscribe("b", seen.append)
    bus.subscribe_all(seen.append)
    assert bus.unsubscribe(seen.append)
    assert not bus.active
    bus.publish("a", 1.0)
    assert seen == []


def test_bus_unsubscribe_unknown_handler_is_noop():
    bus = EventBus()
    seen = []
    bus.subscribe("a", seen.append)
    assert not bus.unsubscribe(print)
    assert not bus.unsubscribe(seen.append, kind="other")
    assert bus.active
    bus.publish("a", 1.0)
    assert len(seen) == 1


def test_bus_clear_is_unsubscribe_all():
    bus = EventBus()
    bus.subscribe("a", lambda e: None)
    bus.subscribe_all(lambda e: None)
    bus.clear()
    assert not bus.active


def test_bus_no_subscriber_publish_builds_no_event(monkeypatch):
    """With no subscribers, publish must return before constructing Event."""
    import repro.sim.instrument as instrument

    class _Exploding:
        def __init__(self, *args, **kwargs):
            raise AssertionError("Event constructed on the fast path")

    monkeypatch.setattr(instrument, "Event", _Exploding)
    bus = instrument.EventBus()
    bus.publish("anything", 1.0, payload=1)  # must not raise


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------

def _registry():
    registry = MetricsRegistry()
    ratio = RatioStat("hits")
    ratio.record(True)
    ratio.record(True)
    ratio.record(False)
    registry.attach("tlb", ratio)
    counter = Counter("walks", value=4)
    registry.attach("walker.walks", counter)
    group = StatGroup("controller")
    group.counter("ml2_accesses").increment(2)
    registry.attach("controller", group)
    registry.attach("controller.paths", lambda: {"cte_hit": 0.75})
    return registry, ratio, counter


def test_snapshot_flattens_every_source_kind():
    registry, _, _ = _registry()
    snapshot = registry.snapshot()
    assert snapshot["tlb.hit_rate"] == pytest.approx(2 / 3)
    assert snapshot["tlb.total"] == 3
    assert snapshot["walker.walks.value"] == 4
    assert snapshot["controller.ml2_accesses"] == 2
    assert snapshot["controller.paths.cte_hit"] == 0.75


def test_get_single_key_is_live():
    registry, ratio, _ = _registry()
    assert registry.get("tlb.hit_rate") == pytest.approx(2 / 3)
    ratio.record(True)
    assert registry.get("tlb.hit_rate") == pytest.approx(3 / 4)
    assert registry.get("no.such.key") is None
    assert registry.get("no.such.key", 1.5) == 1.5


def test_histogram_source():
    registry = MetricsRegistry()
    histogram = Histogram("stall_ns")
    histogram.record(10.0)
    histogram.record(30.0)
    registry.attach("migration.stall_ns", histogram)
    snapshot = registry.snapshot()
    assert snapshot["migration.stall_ns.count"] == 2
    assert snapshot["migration.stall_ns.mean"] == 20.0


def test_attach_conflicts_rejected():
    registry = MetricsRegistry()
    registry.attach("tlb", Counter("a"))
    with pytest.raises(ValueError, match="already attached"):
        registry.attach("tlb", Counter("b"))
    with pytest.raises(ValueError, match="non-empty"):
        registry.attach("", Counter("c"))


def test_detach():
    registry = MetricsRegistry()
    registry.attach("tlb", Counter("a"))
    registry.detach("tlb")
    assert registry.namespaces() == []
    registry.detach("tlb")  # idempotent


def test_tree_and_json_round_trip():
    registry, _, _ = _registry()
    tree = json.loads(registry.to_json())
    assert tree["tlb"]["hit_rate"] == pytest.approx(2 / 3)
    assert tree["walker"]["walks"]["value"] == 4
    assert tree["controller"]["ml2_accesses"] == 2
    assert tree["controller"]["paths"]["cte_hit"] == 0.75


def test_nest_metrics_leaf_namespace_collision():
    nested = nest_metrics({"a.b": 1.0, "a.b.c": 2.0})
    assert nested["a"]["b"][""] == 1.0
    assert nested["a"]["b"]["c"] == 2.0


def test_reset_resets_resettable_sources_only():
    registry, ratio, counter = _registry()
    registry.reset()
    assert ratio.total == 0
    assert counter.value == 0
    # The callable source survives (nothing to reset).
    assert registry.snapshot()["controller.paths.cte_hit"] == 0.75


# ----------------------------------------------------------------------
# Probe
# ----------------------------------------------------------------------

def test_probe_counts_and_emits():
    bus = EventBus()
    seen = []
    bus.subscribe("controller.access_path", seen.append)
    probe = Probe("controller", bus=bus)
    probe.count("l3_misses")
    probe.count("l3_misses", 2)
    probe.record("latency_ns", 12.0)
    probe.ratio("cte", True)
    probe.emit("access_path", 9.0, path="cte_hit")
    assert probe.stats.counter("l3_misses").value == 3
    assert probe.stats.histogram("latency_ns").mean == 12.0
    assert probe.stats.ratio("cte").hit_rate == 1.0
    assert seen[0].kind == "controller.access_path"
    assert seen[0].payload["path"] == "cte_hit"


def test_probe_wraps_existing_stat_group():
    group = StatGroup("controller")
    probe = Probe("controller", stats=group)
    probe.count("x")
    assert group.counter("x").value == 1


def test_probe_emit_namespaces_every_kind():
    bus = EventBus()
    seen = []
    bus.subscribe_all(seen.append)
    Probe("walker", bus=bus).emit("ptb_hit", 1.0)
    Probe("controller", bus=bus).emit("migration", 2.0, pages=3)
    assert [e.kind for e in seen] == ["walker.ptb_hit", "controller.migration"]
    assert seen[1].payload == {"pages": 3}


def test_probe_timed_without_profiler_is_null():
    from repro.sim.profile import NULL_TIMER

    probe = Probe("controller")
    timer = probe.timed("serve_miss")
    assert timer is NULL_TIMER
    with timer:
        pass  # no-op context manager


def test_probe_timed_with_profiler_namespaces_section():
    from repro.sim.profile import HostProfiler

    profiler = HostProfiler()
    probe = Probe("controller", profiler=profiler)
    with probe.timed("serve_miss"):
        pass
    report = profiler()
    assert report["controller.serve_miss.calls"] == 1
    assert report["controller.serve_miss.total_ns"] >= 0
