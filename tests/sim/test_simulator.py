"""Integration tests: the simulator end to end on scaled-down workloads."""

import pytest

from repro.core import available_controllers
from repro.sim.simulator import Simulator
from repro.workloads.suite import workload_by_name


@pytest.fixture(scope="module")
def tiny_canneal():
    return workload_by_name("canneal", max_accesses=60_000, scale=0.12)


@pytest.fixture(scope="module")
def tiny_graph():
    return workload_by_name("shortestPath", max_accesses=60_000, scale=0.3)


def test_unknown_controller_rejected(tiny_canneal):
    with pytest.raises(ValueError):
        Simulator(tiny_canneal, controller="magic")


def test_uncompressed_run_produces_sane_stats(tiny_canneal):
    result = Simulator(tiny_canneal, controller="uncompressed").run()
    assert result.accesses > 0
    assert result.elapsed_ns > 0
    assert result.performance > 0
    assert 0.0 <= result.tlb_miss_rate <= 1.0
    assert result.l3_misses > 0
    # Figure 18's no-compression regime: ~53 ns.
    assert 40 <= result.avg_l3_miss_latency_ns <= 75
    assert result.compression_ratio <= 1.0 + 1e-6


@pytest.mark.parametrize("controller", available_controllers())
def test_every_controller_completes(tiny_canneal, controller):
    result = Simulator(tiny_canneal, controller=controller).run()
    assert result.accesses > 0
    assert result.controller == controller


def test_compresso_latency_worse_than_uncompressed(tiny_canneal):
    base = Simulator(tiny_canneal, controller="uncompressed").run()
    compresso = Simulator(tiny_canneal, controller="compresso").run()
    assert compresso.avg_l3_miss_latency_ns > base.avg_l3_miss_latency_ns + 5
    assert compresso.performance < base.performance


def test_tmcc_latency_close_to_uncompressed(tiny_graph):
    """Figure 18: TMCC within a few ns of no compression."""
    base = Simulator(tiny_graph, controller="uncompressed").run()
    compresso = Simulator(tiny_graph, controller="compresso").run()
    tmcc = Simulator(
        tiny_graph, controller="tmcc",
        dram_budget_bytes=compresso.dram_used_bytes,
    ).run()
    assert tmcc.avg_l3_miss_latency_ns < compresso.avg_l3_miss_latency_ns
    gap_tmcc = tmcc.avg_l3_miss_latency_ns - base.avg_l3_miss_latency_ns
    gap_compresso = compresso.avg_l3_miss_latency_ns - base.avg_l3_miss_latency_ns
    assert gap_tmcc < gap_compresso / 2


def test_tmcc_cte_hit_rate_beats_compresso(tiny_graph):
    compresso = Simulator(tiny_graph, controller="compresso").run()
    tmcc = Simulator(
        tiny_graph, controller="tmcc",
        dram_budget_bytes=compresso.dram_used_bytes,
    ).run()
    assert tmcc.cte_hit_rate > compresso.cte_hit_rate


def test_fig5_most_cte_misses_follow_tlb_misses(tiny_graph):
    compresso = Simulator(tiny_graph, controller="compresso").run()
    tmcc = Simulator(
        tiny_graph, controller="tmcc",
        dram_budget_bytes=compresso.dram_used_bytes,
    ).run()
    # Paper: ~89% on average for page-level CTEs.
    assert tmcc.cte_misses_after_tlb_miss > 0.6


def test_tmcc_uses_parallel_path(tiny_graph):
    compresso = Simulator(tiny_graph, controller="compresso").run()
    tmcc = Simulator(
        tiny_graph, controller="tmcc",
        dram_budget_bytes=compresso.dram_used_bytes,
    ).run()
    fractions = tmcc.path_fractions
    assert fractions["parallel_ok"] > 0.01
    assert fractions["cte_hit"] > 0.3


def test_budgeted_tmcc_reports_ml2_pages(tiny_canneal):
    compresso = Simulator(tiny_canneal, controller="compresso").run()
    tmcc = Simulator(
        tiny_canneal, controller="tmcc",
        dram_budget_bytes=compresso.dram_used_bytes,
    ).run()
    assert tmcc.extra["ml2_pages"] > 0
    assert tmcc.dram_used_bytes <= compresso.dram_used_bytes * 1.02


def test_huge_pages_mode_runs(tiny_graph):
    result = Simulator(tiny_graph, controller="tmcc", huge_pages=True).run()
    assert result.accesses > 0
    # Huge pages slash TLB misses (16 MB reach per entry).
    base = Simulator(tiny_graph, controller="tmcc").run()
    assert result.tlb_miss_rate < base.tlb_miss_rate


def test_determinism(tiny_canneal):
    a = Simulator(tiny_canneal, controller="tmcc", seed=5).run()
    b = Simulator(tiny_canneal, controller="tmcc", seed=5).run()
    assert a.elapsed_ns == b.elapsed_ns
    assert a.l3_misses == b.l3_misses
