"""The fast-path contract: fast and slow loops are indistinguishable.

``repro.sim.fastpath`` promises byte-identical results -- same stat
mutations, same RNG draws, same float accumulation -- whenever it is
eligible.  These goldens pin that promise by rendering the full
``--emit-json`` document (result dict + namespaced metric tree + run
config, exactly as the CLI serializes it) for a fast and a slow run of
every registered controller and comparing the bytes.
"""

import json

import pytest

from repro.common.errors import ConfigError
from repro.core import available_controllers
from repro.sim.experiments import run_workload
from repro.sim.instrument import nest_metrics
from repro.sim.simulator import Simulator
from repro.sim.tracing import SpanTracer
from repro.workloads.suite import workload_by_name


@pytest.fixture(scope="module")
def small_workload():
    return workload_by_name("omnetpp", max_accesses=3_000, scale=0.05)


def emit_json_bytes(workload, controller: str, fast_path: str,
                    budget=None) -> bytes:
    """The exact bytes ``repro run --emit-json`` would print."""
    sim = Simulator(workload, controller=controller, seed=3,
                    dram_budget_bytes=budget, fast_path=fast_path)
    result = sim.run()
    record = result.as_dict()
    record["metrics_tree"] = nest_metrics(result.metrics)
    record["run_config"] = sim.describe_run()
    return json.dumps(record, indent=2, sort_keys=True).encode()


@pytest.mark.parametrize("controller", available_controllers())
def test_emit_json_byte_identical_fast_vs_slow(small_workload, controller):
    fast = emit_json_bytes(small_workload, controller, "on")
    slow = emit_json_bytes(small_workload, controller, "off")
    assert fast == slow


def test_budgeted_tmcc_exercises_ml2_and_stays_identical(small_workload):
    """A DRAM budget forces pages into ML2; the fast loop must replay
    the decompress path, migrations, and ML2 stats bit for bit."""
    compresso = run_workload(small_workload, "compresso", seed=3)
    budget = compresso.dram_used_bytes
    fast = emit_json_bytes(small_workload, "tmcc", "on", budget=budget)
    slow = emit_json_bytes(small_workload, "tmcc", "off", budget=budget)
    assert fast == slow
    record = json.loads(fast)
    assert record["metrics"]["controller.ml2_accesses"] > 0


def test_fast_path_on_rejects_observers(small_workload):
    sim = Simulator(small_workload, controller="uncompressed",
                    fast_path="on")
    sim.attach_tracer(SpanTracer(sample_every=1))
    with pytest.raises(ConfigError):
        sim.run()


def test_fast_path_auto_falls_back_with_observers(small_workload):
    sim = Simulator(small_workload, controller="uncompressed",
                    fast_path="auto")
    sim.attach_tracer(SpanTracer(sample_every=64))
    assert not sim.fast_path_eligible()
    result = sim.run()
    assert result.accesses > 0
    assert sim.tracer.spans(), "tracer saw no spans: fast loop ran anyway"


def test_fast_path_on_rejects_multicore(small_workload):
    with pytest.raises(ValueError):
        run_workload(small_workload, "uncompressed", cores=2,
                     fast_path="on")


def test_invalid_fast_path_value(small_workload):
    with pytest.raises(ValueError):
        Simulator(small_workload, fast_path="yes")
