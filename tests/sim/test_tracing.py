"""Unit tests for causal span tracing and its export formats."""

import json

import pytest

from repro.common.errors import ConfigError
from repro.core.pipeline import Stage, evaluate, parallel, serial
from repro.sim.instrument import EventBus
from repro.sim.tracing import (
    CATEGORY_MISS,
    CATEGORY_STAGE,
    CATEGORY_WALK,
    Span,
    SpanTracer,
    TraceEventWriter,
    convert_trace,
    load_spans,
    perfetto_document,
    spans_from_perfetto,
    write_trace_file,
)


def _record_trace(tracer, start_ns=100.0, with_walk=True):
    tracer.begin_access(start_ns, index=0, vaddr=0x1000, write=False)
    if with_walk and tracer.active:
        walk = tracer.begin("page_walk", CATEGORY_WALK, start_ns, vpn=1)
        tracer.end(walk, start_ns + 40.0)
    tracer.end_access(start_ns + 90.0)


# ----------------------------------------------------------------------
# Sampling and span structure
# ----------------------------------------------------------------------

def test_sampling_is_deterministic_counter_based():
    tracer = SpanTracer(sample_every=3, buffer_spans=4096)
    for i in range(9):
        tracer.begin_access(float(i), index=i)
        sampled = tracer.active
        assert sampled == (i % 3 == 0)
        tracer.end_access(float(i) + 1.0)
    summary = tracer.summary()
    assert summary["accesses_seen"] == 9
    assert summary["traces_recorded"] == 3
    assert summary["traces_dropped"] == 0


def test_span_tree_linkage():
    tracer = SpanTracer()
    _record_trace(tracer)
    spans = tracer.spans()
    root = [s for s in spans if s.category == "access"][0]
    walk = [s for s in spans if s.category == CATEGORY_WALK][0]
    assert root.parent_id is None
    assert walk.parent_id == root.span_id
    assert walk.trace_id == root.trace_id
    assert root.duration_ns == 90.0
    assert walk.duration_ns == 40.0


def test_unsampled_access_records_nothing():
    tracer = SpanTracer(sample_every=2)
    _record_trace(tracer)           # access 1: sampled
    _record_trace(tracer)           # access 2: skipped
    assert tracer.begin("x", CATEGORY_WALK, 0.0) is None  # outside access
    assert tracer.summary()["traces_recorded"] == 1


def test_head_tail_retention_keeps_first_and_last():
    tracer = SpanTracer(sample_every=1, buffer_spans=8)
    for i in range(20):
        _record_trace(tracer, start_ns=float(i) * 100.0)  # 2 spans per trace
    summary = tracer.summary()
    assert summary["traces_recorded"] == 20
    assert summary["spans_retained"] <= 8 + 2  # tail keeps >= 1 whole trace
    assert summary["traces_dropped"] > 0
    starts = [trace[0].start_ns for trace in tracer.traces()]
    # Head holds the earliest traces, tail the latest.
    assert starts[0] == 0.0
    assert starts[-1] == 1900.0
    assert starts == sorted(starts)


def test_timeline_promotion_preserves_parallel_structure():
    timeline = evaluate(
        serial(
            Stage("metadata", 10.0),
            parallel(Stage("cte_fetch", 30.0), Stage("data_fetch", 50.0)),
        ),
        start_ns=200.0,
    )
    tracer = SpanTracer()
    tracer.begin_access(200.0, index=0)
    tracer.add_timeline("llc_miss", timeline, path="parallel_ok", kind="data")
    tracer.end_access(200.0 + timeline.total_ns)
    spans = tracer.spans()
    miss = [s for s in spans if s.category == CATEGORY_MISS][0]
    stages = {s.name: s for s in spans if s.category == CATEGORY_STAGE}
    assert set(stages) == {"metadata", "cte_fetch", "data_fetch"}
    # The speculative verify branches share a parent and a start time.
    assert stages["cte_fetch"].parent_id == miss.span_id
    assert stages["data_fetch"].parent_id == miss.span_id
    assert stages["cte_fetch"].start_ns == stages["data_fetch"].start_ns
    assert stages["data_fetch"].args["critical"] is True
    assert miss.args["path"] == "parallel_ok"


def test_bus_bridge_records_instants_only_while_sampled():
    bus = EventBus()
    tracer = SpanTracer(sample_every=2)
    tracer.attach_bus(bus)
    tracer.begin_access(0.0, index=0)
    bus.publish("faults.injected", 5.0, fault="tlb_shootdown")
    tracer.end_access(10.0)
    tracer.begin_access(20.0, index=1)  # unsampled
    bus.publish("faults.injected", 25.0, fault="tlb_shootdown")
    tracer.end_access(30.0)
    instants = [s for s in tracer.spans() if s.category == "fault"]
    assert len(instants) == 1
    assert instants[0].start_ns == 5.0
    assert instants[0].duration_ns == 0.0
    tracer.detach_bus()
    assert not bus.active


# ----------------------------------------------------------------------
# Export / import round trips
# ----------------------------------------------------------------------

def _sample_spans():
    tracer = SpanTracer()
    _record_trace(tracer)
    tracer.begin_access(500.0, index=1)
    tracer.instant("faults.injected", "fault", 510.0, fault="x")
    tracer.end_access(600.0)
    return tracer.spans()


def test_span_dict_round_trip():
    for span in _sample_spans():
        assert Span.from_dict(span.as_dict()) == span


def test_perfetto_document_schema():
    document = perfetto_document(_sample_spans(), metadata={"workload": "w"})
    assert document["displayTimeUnit"] == "ns"
    assert document["metadata"]["workload"] == "w"
    events = document["traceEvents"]
    assert all(e["ph"] in ("X", "i") for e in events)
    complete = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    assert complete and instants
    assert all("dur" in e for e in complete)
    root = [e for e in complete if e["cat"] == "access"][0]
    assert root["ts"] == pytest.approx(0.1)  # 100 ns in microseconds
    assert root["args"]["parent_id"] is None
    assert spans_from_perfetto(document) == _sample_spans()


def test_convert_round_trip_both_directions(tmp_path):
    spans = _sample_spans()
    jsonl = tmp_path / "trace.jsonl"
    perfetto = tmp_path / "trace.json"
    write_trace_file(spans, jsonl)
    assert convert_trace(jsonl, perfetto) == len(spans)
    assert load_spans(perfetto) == spans
    back = tmp_path / "back.jsonl"
    assert convert_trace(perfetto, back) == len(spans)
    assert load_spans(back) == spans
    # The Perfetto file is a single valid JSON document.
    json.loads(perfetto.read_text())


def test_load_spans_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("this is not json\n")
    with pytest.raises(ConfigError):
        load_spans(bad)
    with pytest.raises(ConfigError):
        load_spans(tmp_path / "missing.jsonl")
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert load_spans(empty) == []


# ----------------------------------------------------------------------
# TraceEventWriter
# ----------------------------------------------------------------------

def test_trace_event_writer_flushes_and_closes(tmp_path):
    path = tmp_path / "events.jsonl"
    bus = EventBus()
    writer = TraceEventWriter(path).attach(bus)
    bus.publish("tlb.miss", 1.0, vpn=2)
    bus.publish("controller.migration", 2.0, pages=1)
    writer.close()
    writer.close()  # idempotent
    assert writer.closed
    assert not bus.active  # handler detached on close
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert [row["kind"] for row in lines] == ["tlb.miss", "controller.migration"]
    assert lines[0]["vpn"] == 2


def test_trace_event_writer_bad_path_fails_fast(tmp_path):
    with pytest.raises(ConfigError):
        TraceEventWriter(tmp_path / "no" / "such" / "dir" / "events.jsonl")
