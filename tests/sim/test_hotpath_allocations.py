"""Allocation discipline of the per-access hot path.

Two properties keep the replay loop cheap:

1. the per-access record types carry ``__slots__`` (no ``__dict__``),
   so the millions of short-lived instances a slow run creates stay
   small -- pinned here with a tracemalloc footprint measurement;
2. the zero-observer fast loop elides that object graph entirely --
   pinned by counting constructions of the slow path's record objects
   during a fast run.
"""

import tracemalloc

import pytest

from repro.cache.hierarchy import AccessResult, CacheHierarchy
from repro.cache.sa_cache import CacheLine
from repro.core.base import MissResult
from repro.core.twolevel import TwoLevelController
from repro.dram.system import ReadResult
from repro.sim.simulator import Simulator
from repro.workloads.suite import workload_by_name

HOT_INSTANCES = [
    CacheLine(block=1),
    AccessResult(hit_level="l1", latency_cycles=3, l3_miss=False),
    MissResult(latency_ns=1.0, path="cte_hit"),
    ReadResult(latency_ns=1.0, queue_ns=0.0, bank_ns=1.0, row_hit=True,
               mc=0, channel=0),
]


@pytest.mark.parametrize("instance", HOT_INSTANCES,
                         ids=lambda i: type(i).__name__)
def test_hot_per_access_classes_have_no_dict(instance):
    assert not hasattr(instance, "__dict__")
    assert hasattr(type(instance), "__slots__")


def test_cacheline_allocation_footprint():
    """tracemalloc: a slotted CacheLine stays well under the ~160+
    bytes a ``__dict__``-bearing instance would cost."""
    count = 10_000
    tracemalloc.start()
    lines = [CacheLine(block) for block in range(count)]
    size, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    per_instance = size / len(lines)
    assert per_instance < 120, f"{per_instance:.0f} bytes per CacheLine"


def test_fast_loop_constructs_no_per_access_records(monkeypatch):
    """The fast loop must never reach the allocating slow-path entry
    points (``CacheHierarchy.access`` -> AccessResult,
    ``serve_l3_miss`` -> MissResult/ServiceTimeline)."""
    calls = {"access": 0, "miss": 0}
    slow_access = CacheHierarchy.access
    slow_miss = TwoLevelController.serve_l3_miss

    def counting_access(self, *args, **kwargs):
        calls["access"] += 1
        return slow_access(self, *args, **kwargs)

    def counting_miss(self, *args, **kwargs):
        calls["miss"] += 1
        return slow_miss(self, *args, **kwargs)

    monkeypatch.setattr(CacheHierarchy, "access", counting_access)
    monkeypatch.setattr(TwoLevelController, "serve_l3_miss", counting_miss)

    workload = workload_by_name("omnetpp", max_accesses=2_000, scale=0.05)
    Simulator(workload, controller="tmcc", seed=3, fast_path="on").run()
    assert calls == {"access": 0, "miss": 0}

    Simulator(workload, controller="tmcc", seed=3, fast_path="off").run()
    assert calls["access"] > 0
    assert calls["miss"] > 0
