"""Tests for the shared virtual-address decomposition (`repro.sim.columns`).

Both replay loops split accesses through this module; these tests pin
the decomposition itself (including the huge-page tag) and prove the
three `trace_columns` spellings -- numpy, pure python, and the
beyond-int64 overflow fallback -- agree with the per-access helper.
"""

import pytest
from hypothesis import given, strategies as st

from repro.sim.columns import decompose_vaddr, trace_columns


def test_decompose_known_values():
    # vaddr = page 0x345, block 9 within the page, byte 0x11.
    vaddr = (0x345 << 12) | (9 << 6) | 0x11
    assert decompose_vaddr(vaddr, huge_pages=False) == (0x345, 0x345, 9)
    # Huge pages tag by the 2 MiB frame: vpn >> 9 == vaddr >> 21.
    assert decompose_vaddr(vaddr, huge_pages=True) == (0x345, 0x345 >> 9, 9)
    assert decompose_vaddr(0, huge_pages=True) == (0, 0, 0)


@given(st.integers(min_value=0, max_value=(1 << 64) - 1),
       st.booleans())
def test_decompose_field_relations(vaddr, huge):
    vpn, tag, block = decompose_vaddr(vaddr, huge)
    assert vpn == vaddr >> 12
    assert tag == (vaddr >> 21 if huge else vaddr >> 12)
    assert 0 <= block < 64
    assert block == (vaddr >> 6) & 0x3F


@pytest.mark.parametrize("huge", [False, True])
def test_trace_columns_matches_per_access_helper(huge):
    trace = [((i * 0x1F123) & ((1 << 48) - 1), bool(i % 3))
             for i in range(257)]
    vpns, tags, blocks, writes = trace_columns(trace, huge)
    assert len(vpns) == len(tags) == len(blocks) == len(writes) == len(trace)
    for i, (vaddr, is_write) in enumerate(trace):
        vpn, tag, block = decompose_vaddr(vaddr, huge)
        assert (vpns[i], tags[i], blocks[i]) == (vpn, tag, block)
        assert writes[i] == is_write


def test_trace_columns_small_pages_share_the_vpn_column():
    trace = [(0x1234000, False), (0x1235000, True)]
    vpns, tags, _, _ = trace_columns(trace, huge_pages=False)
    assert tags is vpns  # no huge pages: the tag column IS the vpn column


@pytest.mark.parametrize("huge", [False, True])
def test_trace_columns_beyond_int64_falls_back(huge):
    """Addresses past int64 overflow numpy's fromiter; the pure-python
    fallback (arbitrary precision) must produce the same columns."""
    big = 1 << 70
    trace = [(big | (0x7 << 12) | (3 << 6), False), (big * 2, True)]
    vpns, tags, blocks, writes = trace_columns(trace, huge)
    for i, (vaddr, is_write) in enumerate(trace):
        assert (vpns[i], tags[i], blocks[i]) == decompose_vaddr(vaddr, huge)
        assert writes[i] == is_write
    assert vpns[0] == (big >> 12) | 0x7


@pytest.mark.parametrize("huge", [False, True])
def test_trace_columns_identical_with_numpy_masked(monkeypatch, huge):
    trace = [((i * 0xABCD5) & ((1 << 52) - 1), i % 2 == 0)
             for i in range(64)]
    with_numpy = trace_columns(trace, huge)
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    assert trace_columns(trace, huge) == with_numpy


def test_trace_columns_empty_trace():
    assert trace_columns([], huge_pages=False) == ([], [], [], [])
