"""Integration tests: the simulator in virtualized (2D-walk) mode."""

import pytest

from repro.sim.simulator import Simulator
from repro.workloads.suite import workload_by_name


@pytest.fixture(scope="module")
def workload():
    return workload_by_name("omnetpp", max_accesses=20_000, scale=0.1)


def test_virtualized_mode_runs(workload):
    result = Simulator(workload, controller="tmcc", virtualized=True).run()
    assert result.accesses > 0
    assert result.l3_misses > 0


def test_virtualized_rejects_huge_pages(workload):
    with pytest.raises(ValueError):
        Simulator(workload, virtualized=True, huge_pages=True)


def test_2d_walks_cost_more_than_native(workload):
    """Virtualization inflates walk traffic; TLB misses hurt more."""
    native = Simulator(workload, controller="uncompressed", seed=5).run()
    virtual = Simulator(workload, controller="uncompressed", seed=5,
                        virtualized=True).run()
    assert virtual.performance < native.performance
    assert virtual.l3_misses >= native.l3_misses


def test_tmcc_harvests_from_host_ptbs(workload):
    sim = Simulator(workload, controller="tmcc", virtualized=True)
    result = sim.run()
    compressed = sim.controller.stats.counter("ptbs_compressed").value
    assert compressed > 0
    fractions = result.path_fractions
    assert fractions["parallel_ok"] > 0.0 or fractions["cte_hit"] > 0.9


def test_tmcc_still_beats_compresso_under_virtualization(workload):
    compresso = Simulator(workload, controller="compresso", seed=3,
                          virtualized=True).run()
    tmcc = Simulator(workload, controller="tmcc", seed=3, virtualized=True,
                     dram_budget_bytes=compresso.dram_used_bytes).run()
    assert tmcc.avg_l3_miss_latency_ns < compresso.avg_l3_miss_latency_ns
    assert tmcc.performance > compresso.performance


def test_virtualized_determinism(workload):
    a = Simulator(workload, controller="tmcc", virtualized=True, seed=11).run()
    b = Simulator(workload, controller="tmcc", virtualized=True, seed=11).run()
    assert a.elapsed_ns == b.elapsed_ns
