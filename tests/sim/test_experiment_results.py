"""Unit tests for experiment result dataclasses' arithmetic."""

import pytest

from repro.sim.experiments import (
    IsoCapacityResult,
    IsoPerformanceResult,
    SplitResult,
)
from repro.sim.results import SimResult


def result(performance_ns_per_access=10.0, used=100, footprint=200,
           accesses=1000):
    return SimResult(
        workload="w", controller="c", accesses=accesses,
        elapsed_ns=accesses * performance_ns_per_access,
        dram_used_bytes=used, footprint_bytes=footprint,
    )


def test_sim_result_performance_metric():
    r = result(performance_ns_per_access=10.0, accesses=1000)
    assert r.performance == 100.0  # accesses per microsecond
    empty = SimResult("w", "c", accesses=0, elapsed_ns=0.0)
    assert empty.performance == 0.0
    assert empty.compression_ratio == 0.0


def test_sim_result_ratios():
    r = result(used=100, footprint=250)
    assert r.compression_ratio == 2.5
    r.l3_misses = 200
    r.cte_misses = 50
    assert r.cte_misses_per_l3_miss == 0.25
    r.l3_data_misses = 100
    r.tlb_misses = 30
    assert r.tlb_misses_per_l3_miss == 0.3


def test_iso_capacity_result_speedup():
    compresso = result(performance_ns_per_access=20.0)
    tmcc = result(performance_ns_per_access=16.0)
    iso = IsoCapacityResult("w", compresso, tmcc)
    assert iso.speedup == pytest.approx(1.25)
    assert iso.budget_bytes == compresso.dram_used_bytes


def test_iso_performance_result_normalization():
    compresso = result(used=200, footprint=260)     # ratio 1.3
    tmcc = result(used=100, footprint=260)          # ratio 2.6
    iso = IsoPerformanceResult("w", compresso, tmcc)
    assert iso.compresso_ratio == pytest.approx(1.3)
    assert iso.tmcc_ratio == pytest.approx(2.6)
    assert iso.normalized_ratio == pytest.approx(2.0)


def test_split_result_decomposition():
    base = result(performance_ns_per_access=24.0)
    fast_ml2 = result(performance_ns_per_access=20.0)
    tmcc = result(performance_ns_per_access=16.0)
    split = SplitResult("w", base, fast_ml2, tmcc)
    assert split.total_speedup == pytest.approx(1.5)
    assert split.ml2_speedup == pytest.approx(1.2)
    assert split.ml1_speedup == pytest.approx(1.25)
    # The decomposition is multiplicative (up to float rounding).
    assert split.ml1_speedup * split.ml2_speedup == pytest.approx(
        split.total_speedup)
