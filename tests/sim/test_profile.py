"""Unit tests for host wall-clock profiling."""

import pytest

from repro.sim.instrument import MetricsRegistry
from repro.sim.profile import NULL_TIMER, HostProfiler


class _FakeClock:
    """Deterministic perf counter: advances only when told."""

    def __init__(self):
        self.now = 0

    def __call__(self):
        return self.now


def test_null_timer_is_shared_noop():
    with NULL_TIMER as timer:
        assert timer is NULL_TIMER


def test_self_time_excludes_children():
    clock = _FakeClock()
    profiler = HostProfiler(clock=clock)
    profiler.begin("access")
    clock.now = 10
    profiler.begin("controller")
    clock.now = 40
    profiler.end()  # controller: 30 ns, all self
    clock.now = 50
    profiler.end()  # access: 50 ns total, 20 ns self
    assert profiler.total_ns("access") == 50
    assert profiler.self_ns("access") == 20
    assert profiler.total_ns("controller") == 30
    assert profiler.self_ns("controller") == 30
    assert profiler.calls("access") == 1


def test_section_context_manager_and_recursion():
    clock = _FakeClock()
    profiler = HostProfiler(clock=clock)
    for _ in range(3):
        with profiler.section("serve"):
            clock.now += 5
    assert profiler.calls("serve") == 3
    assert profiler.total_ns("serve") == 15


def test_end_without_begin_raises():
    with pytest.raises(RuntimeError):
        HostProfiler().end()


def test_metrics_source_flattening():
    clock = _FakeClock()
    profiler = HostProfiler(clock=clock)
    with profiler.section("sim.access"):
        clock.now += 7
    registry = MetricsRegistry()
    registry.attach("profile", profiler)
    snapshot = registry.snapshot()
    assert snapshot["profile.sim.access.total_ns"] == 7
    assert snapshot["profile.sim.access.self_ns"] == 7
    assert snapshot["profile.sim.access.calls"] == 1


def test_reset_clears_totals_keeps_open_sections():
    clock = _FakeClock()
    profiler = HostProfiler(clock=clock)
    with profiler.section("warmup"):
        clock.now += 100
    profiler.begin("run")
    clock.now = 150
    profiler.reset()  # warm-up boundary with "run" still open
    clock.now = 170
    profiler.end()
    assert profiler.total_ns("warmup") == 0
    # The open section keeps running across the reset -- its whole
    # elapsed time lands in the post-reset totals.
    assert profiler.total_ns("run") == 70


def test_report_rows_sorted_by_self_time():
    clock = _FakeClock()
    profiler = HostProfiler(clock=clock)
    with profiler.section("cold"):
        clock.now += 1_000_000
    with profiler.section("hot"):
        clock.now += 5_000_000
    rows = profiler.report_rows()
    assert [row["section"] for row in rows] == ["hot", "cold"]
    assert rows[0]["self_ms"] == 5.0
