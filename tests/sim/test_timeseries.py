"""Unit tests for the windowed metrics time-series recorder."""

import io

import pytest

from repro.common.errors import ConfigError
from repro.common.stats import Counter, RatioStat
from repro.sim.instrument import MetricsRegistry
from repro.sim.timeseries import (
    ROW_META_KEYS,
    TimeSeriesRecorder,
    read_rows,
    write_csv,
    write_timeseries_file,
)


def _setup():
    registry = MetricsRegistry()
    counter = Counter("accesses")
    ratio = RatioStat("hits")
    registry.attach("sim.accesses", counter)
    registry.attach("tlb", ratio)
    return registry, counter, ratio


def test_delta_rows_per_window():
    registry, counter, _ = _setup()
    recorder = TimeSeriesRecorder(registry, interval_ns=100.0)
    counter.increment(5)
    recorder.maybe_sample(100.0)
    counter.increment(3)
    recorder.maybe_sample(250.0)  # crosses the 200 ns boundary
    assert len(recorder.rows) == 2
    first, second = recorder.rows
    assert first["window"] == 0
    assert (first["start_ns"], first["end_ns"]) == (0.0, 100.0)
    assert first["sim.accesses.value"] == 5
    # Deltas, not cumulative values.
    assert second["sim.accesses.value"] == 3
    assert (second["start_ns"], second["end_ns"]) == (100.0, 200.0)


def test_windowed_hit_rate_recomputed_from_deltas():
    registry, _, ratio = _setup()
    recorder = TimeSeriesRecorder(registry, interval_ns=100.0)
    for hit in (True, True, False, False):
        ratio.record(hit)
    recorder.maybe_sample(100.0)       # window 0: 2/4
    for _ in range(4):
        ratio.record(True)
    recorder.finish(150.0)             # window 1 (partial): 4/4
    assert recorder.rows[0]["tlb.hit_rate"] == 0.5
    # The cumulative rate only moved 0.5 -> 0.75; the window is pure.
    assert recorder.rows[1]["tlb.hit_rate"] == 1.0
    assert recorder.rows[1]["end_ns"] == 150.0


def test_finish_skips_empty_partial_window():
    registry, counter, _ = _setup()
    recorder = TimeSeriesRecorder(registry, interval_ns=100.0)
    counter.increment()
    recorder.finish(100.0)  # exactly one full window, nothing after
    assert len(recorder.rows) == 1


def test_on_reset_rebaselines():
    registry, counter, _ = _setup()
    recorder = TimeSeriesRecorder(registry, interval_ns=100.0)
    counter.increment(50)
    registry.reset()
    recorder.on_reset()
    counter.increment(2)
    recorder.finish(100.0)
    # Without re-baselining this would be 2 - 50 = -48.
    assert recorder.rows[0]["sim.accesses.value"] == 2


def test_rejects_bad_interval():
    registry, _, _ = _setup()
    with pytest.raises(ConfigError):
        TimeSeriesRecorder(registry, interval_ns=0.0)


def test_columns_and_column():
    registry, counter, ratio = _setup()
    recorder = TimeSeriesRecorder(registry, interval_ns=100.0)
    counter.increment()
    ratio.record(True)
    recorder.maybe_sample(100.0)
    counter.increment(4)
    recorder.maybe_sample(200.0)
    columns = recorder.columns()
    assert columns[:3] == list(ROW_META_KEYS)
    assert columns[3:] == sorted(columns[3:])
    assert "tlb.hit_rate" in columns
    assert recorder.column("sim.accesses.value") == [1.0, 4.0]


def test_csv_round_trip(tmp_path):
    registry, counter, ratio = _setup()
    recorder = TimeSeriesRecorder(registry, interval_ns=100.0)
    counter.increment(7)
    ratio.record(True)
    ratio.record(False)
    recorder.finish(100.0)
    path = tmp_path / "series.csv"
    write_timeseries_file(recorder.rows, path, columns=recorder.columns())
    rows = read_rows(path)
    assert len(rows) == 1
    assert rows[0]["sim.accesses.value"] == 7.0
    assert rows[0]["tlb.hit_rate"] == 0.5
    header = path.read_text().splitlines()[0]
    assert header.startswith("window,start_ns,end_ns,")


def test_jsonl_round_trip(tmp_path):
    registry, counter, _ = _setup()
    recorder = TimeSeriesRecorder(registry, interval_ns=50.0)
    counter.increment(2)
    recorder.maybe_sample(50.0)
    counter.increment(3)
    recorder.finish(100.0)
    path = tmp_path / "series.jsonl"
    write_timeseries_file(recorder.rows, path)
    rows = read_rows(path)
    assert [row["sim.accesses.value"] for row in rows] == [2, 3]


def test_csv_header_is_union_of_keys():
    handle = io.StringIO()
    rows = [
        {"window": 0, "start_ns": 0.0, "end_ns": 1.0, "a": 1.0},
        {"window": 1, "start_ns": 1.0, "end_ns": 2.0, "b": 2.5},
    ]
    write_csv(rows, handle)
    lines = handle.getvalue().splitlines()
    assert lines[0] == "window,start_ns,end_ns,a,b"
    # Missing cells render as 0; floats keep full precision.
    assert lines[1] == "0,0,1,1,0"
    assert lines[2] == "1,1,2,0,2.5"
