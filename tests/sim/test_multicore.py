"""Tests for the multi-core simulator."""

import pytest

from repro.sim.multicore import MultiCoreSimulator
from repro.sim.simulator import Simulator
from repro.workloads.suite import workload_by_name


@pytest.fixture(scope="module")
def workload():
    return workload_by_name("canneal", max_accesses=24_000, scale=0.12)


def test_validation(workload):
    with pytest.raises(ValueError):
        MultiCoreSimulator(workload, num_cores=0)
    with pytest.raises(ValueError):
        MultiCoreSimulator(workload, controller="warp-drive")


def test_four_cores_complete_the_whole_trace(workload):
    result = MultiCoreSimulator(workload, num_cores=4,
                                controller="uncompressed").run()
    assert result.accesses == int(workload.access_count * 0.8)
    assert result.elapsed_ns > 0


def test_aggregate_throughput_scales_with_cores(workload):
    """Four concurrent streams finish faster than one serial stream."""
    one = MultiCoreSimulator(workload, num_cores=1,
                             controller="uncompressed").run()
    four = MultiCoreSimulator(workload, num_cores=4,
                              controller="uncompressed").run()
    assert four.performance > 1.5 * one.performance


def test_shared_resources_create_contention(workload):
    """Per-core efficiency drops going 1 -> 4 cores (DRAM/L3 sharing)."""
    one = MultiCoreSimulator(workload, num_cores=1,
                             controller="uncompressed").run()
    four = MultiCoreSimulator(workload, num_cores=4,
                              controller="uncompressed").run()
    assert four.performance < 4.2 * one.performance


def test_tmcc_still_beats_compresso_at_four_cores(workload):
    compresso = MultiCoreSimulator(workload, num_cores=4,
                                   controller="compresso").run()
    tmcc = MultiCoreSimulator(
        workload, num_cores=4, controller="tmcc",
        dram_budget_bytes=compresso.dram_used_bytes,
    ).run()
    assert tmcc.performance > compresso.performance
    assert tmcc.avg_l3_miss_latency_ns < compresso.avg_l3_miss_latency_ns


def test_multicore_determinism(workload):
    a = MultiCoreSimulator(workload, num_cores=2, controller="tmcc",
                           seed=9).run()
    b = MultiCoreSimulator(workload, num_cores=2, controller="tmcc",
                           seed=9).run()
    assert a.elapsed_ns == b.elapsed_ns
    assert a.l3_misses == b.l3_misses


def test_multicore_vs_singlecore_same_memory_system(workload):
    """The single-core Simulator and a 1-core MultiCoreSimulator agree on
    the broad translation statistics."""
    single = Simulator(workload, controller="compresso").run()
    multi = MultiCoreSimulator(workload, num_cores=1,
                               controller="compresso").run()
    assert multi.cte_hit_rate == pytest.approx(single.cte_hit_rate, abs=0.15)
