"""Unit tests for SimContext: RNG streams, clock, component tree."""

import pytest

from repro.common.stats import Counter, RatioStat, StatGroup
from repro.core.config import SystemConfig
from repro.sim.context import SimClock, SimContext


def test_default_system_config():
    context = SimContext()
    assert isinstance(context.system, SystemConfig)
    custom = SystemConfig()
    assert SimContext(custom).system is custom


def test_rng_streams_are_deterministic_and_distinct():
    a = SimContext(seed=5)
    b = SimContext(seed=5)
    assert [a.rng("frames").randint(0, 10**9) for _ in range(4)] == \
           [b.rng("frames").randint(0, 10**9) for _ in range(4)]
    # Different streams see different sequences.
    frames = a.rng("frames")
    populate = a.rng("populate")
    assert [frames.randint(0, 10**9) for _ in range(8)] != \
           [populate.randint(0, 10**9) for _ in range(8)]


def test_rng_stream_seed_derivations_exact():
    """The derivations reproduce the pre-refactor hand-wired seeds."""
    from repro.common.rng import DeterministicRNG

    context = SimContext(seed=11)
    expected = {"frames": 11, "populate": 12, "host_frames": 18,
                "host_populate": 19, "placement": 11 ^ 0xD81F7}
    for stream, seed in expected.items():
        assert context.rng(stream).randint(0, 10**9) == \
               DeterministicRNG(seed).randint(0, 10**9), stream


def test_unknown_rng_stream_rejected():
    with pytest.raises(ValueError, match="unknown RNG stream"):
        SimContext().rng("entropy")


def test_clock():
    clock = SimClock()
    assert clock.now_ns == 0.0
    assert clock.advance(5.0) == 5.0
    clock.advance(2.5)
    assert clock.now_ns == 7.5
    clock.reset()
    assert clock.now_ns == 0.0


def test_register_auto_attaches_stats():
    context = SimContext()

    class Component:
        def __init__(self):
            self.stats = RatioStat("hits")

    component = context.register("tlb", Component())
    component.stats.record(True)
    component.stats.record(False)
    assert context.metrics.get("tlb.hit_rate") == 0.5
    assert context.component("tlb") is component


def test_register_explicit_stats_wins():
    context = SimContext()
    counter = Counter("walks")
    context.register("walker", object(), stats=counter)
    counter.increment(3)
    assert context.metrics.get("walker.value") == 3


def test_register_stats_free_component():
    context = SimContext()
    context.register("plain", object())
    assert context.metrics.namespaces() == []


def test_register_duplicate_path_rejected():
    context = SimContext()
    context.register("tlb", object())
    with pytest.raises(ValueError, match="already registered"):
        context.register("tlb", object())


def test_unknown_component_rejected():
    with pytest.raises(ValueError, match="unknown component"):
        SimContext().component("nope")


def test_component_tree_nesting():
    context = SimContext()
    context.register("controller", object())
    context.register("controller.cte_cache", object())
    context.register("core0.tlb", object())
    tree = context.component_tree()
    assert tree["controller"][""] == "object"
    assert tree["controller"]["cte_cache"] == "object"
    assert tree["core0"]["tlb"] == "object"


def test_probe_shares_bus():
    context = SimContext()
    seen = []
    context.bus.subscribe_all(seen.append)
    probe = context.probe("controller", stats=StatGroup("controller"))
    probe.emit("access_path", 10.0, path="cte_hit")
    assert len(seen) == 1
    assert seen[0].kind == "controller.access_path"


def test_reset_metrics_zeroes_sources():
    context = SimContext()
    ratio = RatioStat("hits")
    context.register("tlb", object(), stats=ratio)
    ratio.record(True)
    context.reset_metrics()
    assert ratio.total == 0
