"""Run-supervision tests: checkpoints, resume, and the wall-clock watchdog.

The acceptance bar is exact: a run interrupted by the supervisor and
resumed from its checkpoint must produce the same :class:`SimResult` as
an uninterrupted run, down to the last float (RNG streams, clock, and
fault-injector position all travel in the checkpoint).
"""

import os
import pickle

import pytest

from repro.common.errors import ConfigError, ResourceError
from repro.sim.faults import FaultPlan
from repro.sim.simulator import Simulator
from repro.sim.supervisor import (
    CHECKPOINT_VERSION,
    RunSupervisor,
    load_checkpoint,
    save_checkpoint,
)
from repro.workloads.suite import workload_by_name


def small_sim(**kwargs):
    workload = workload_by_name("mcf", max_accesses=6000, scale=0.12)
    return Simulator(workload, controller="tmcc", seed=3, **kwargs)


class SteppingClock:
    """Deterministic stand-in for time.monotonic: +1 s per reading."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------

def test_periodic_checkpoints_do_not_perturb_the_run(tmp_path):
    path = str(tmp_path / "ck.pkl")
    baseline = small_sim().run()
    supervisor = RunSupervisor(checkpoint_path=path, checkpoint_every=300)
    supervised = supervisor.run(small_sim())
    assert supervisor.checkpoints_written > 0
    assert supervised.as_dict() == baseline.as_dict()


def test_resume_from_mid_run_checkpoint_matches_uninterrupted(tmp_path):
    path = str(tmp_path / "ck.pkl")
    baseline = small_sim().run()
    RunSupervisor(checkpoint_path=path, checkpoint_every=300).run(small_sim())
    resumed = load_checkpoint(path).run()  # continues from the last 300
    assert resumed.as_dict() == baseline.as_dict()


def test_watchdog_truncation_then_resume_matches_uninterrupted(tmp_path):
    """The acceptance scenario: interrupt via wall-clock watchdog, write
    the final checkpoint, resume, and land on the identical result."""
    path = str(tmp_path / "ck.pkl")
    baseline = small_sim().run()
    supervisor = RunSupervisor(checkpoint_path=path, wall_clock_limit_s=5.0,
                               clock=SteppingClock())
    partial = supervisor.run(small_sim())
    assert partial.truncated
    assert "wall-clock limit" in partial.error
    assert partial.accesses < baseline.accesses
    assert supervisor.checkpoints_written == 1  # the truncation checkpoint
    resumed = load_checkpoint(path).run()
    assert not resumed.truncated
    assert resumed.as_dict() == baseline.as_dict()


def test_truncated_result_still_carries_collected_metrics():
    supervisor = RunSupervisor(wall_clock_limit_s=3.0, clock=SteppingClock())
    partial = supervisor.run(small_sim())
    assert partial.truncated
    assert partial.metrics.get("tlb.total", 0) > 0


def test_faulted_run_resumes_identically(tmp_path):
    """Checkpoints capture the fault injector mid-sequence: the resumed
    half replays the exact same fault stream."""
    path = str(tmp_path / "ck.pkl")
    spec = "dram_read_error:0.02:2,stale_cte:0.02"
    baseline = small_sim(fault_plan=FaultPlan.parse(spec)).run()
    assert baseline.metrics["resilience.faults_injected"] > 0
    supervisor = RunSupervisor(checkpoint_path=path, checkpoint_every=250)
    first = supervisor.run(small_sim(fault_plan=FaultPlan.parse(spec)))
    assert first.as_dict() == baseline.as_dict()
    resumed = load_checkpoint(path).run()
    assert resumed.as_dict() == baseline.as_dict()


def test_checkpoint_detaches_then_restores_bus_subscribers(tmp_path):
    path = str(tmp_path / "ck.pkl")
    sim = small_sim()
    events = []
    sim.context.bus.subscribe_all(events.append)
    save_checkpoint(sim, path)
    assert sim.context.bus.active  # restored after the dump
    restored = load_checkpoint(path)
    assert not restored.context.bus.active  # but not pickled
    sim.run()
    assert events, "subscribers must keep firing after a checkpoint"


# ----------------------------------------------------------------------
# Durability and liveness
# ----------------------------------------------------------------------

def test_crash_between_write_and_replace_leaves_durable_tmp(
        tmp_path, monkeypatch):
    """A crash between the tmp write and the rename (simulated:
    os.replace raising) must never leave a torn final checkpoint, and
    the tmp file must already hold the complete fsynced payload."""
    path = str(tmp_path / "ck.pkl")
    fsynced = []
    real_fsync = os.fsync

    def counting_fsync(fd):
        fsynced.append(fd)
        return real_fsync(fd)

    def crash(src, dst):
        raise OSError("simulated crash between write and rename")

    monkeypatch.setattr(os, "fsync", counting_fsync)
    monkeypatch.setattr(os, "replace", crash)
    with pytest.raises(ResourceError, match="cannot write checkpoint"):
        save_checkpoint(small_sim(), path)
    assert not os.path.exists(path)  # the final path was never touched
    assert fsynced  # the payload hit disk before the rename attempt
    with open(path + ".tmp", "rb") as handle:
        record = pickle.load(handle)  # complete, not torn
    assert record["version"] == CHECKPOINT_VERSION


def test_checkpoint_write_fsyncs_file_then_directory(tmp_path,
                                                     monkeypatch):
    calls = []
    real_fsync = os.fsync

    def counting_fsync(fd):
        calls.append(fd)
        return real_fsync(fd)

    monkeypatch.setattr(os, "fsync", counting_fsync)
    save_checkpoint(small_sim(), str(tmp_path / "ck.pkl"))
    assert len(calls) >= 2  # the tmp file's bytes, then the dir entry


def test_supervisor_heartbeat_fires_on_the_watchdog_stride():
    beats = []
    supervisor = RunSupervisor(heartbeat=lambda: beats.append(1))
    result = supervisor.run(small_sim())
    assert not result.truncated
    assert len(beats) >= result.accesses // 64


# ----------------------------------------------------------------------
# Error taxonomy
# ----------------------------------------------------------------------

def test_load_checkpoint_missing_file_is_resource_error(tmp_path):
    with pytest.raises(ResourceError):
        load_checkpoint(str(tmp_path / "missing.pkl"))


def test_load_checkpoint_garbage_is_config_error(tmp_path):
    path = tmp_path / "garbage.pkl"
    path.write_text("this is not a pickle")
    with pytest.raises(ConfigError):
        load_checkpoint(str(path))


def test_load_checkpoint_rejects_wrong_version(tmp_path):
    path = tmp_path / "stale.pkl"
    path.write_bytes(pickle.dumps({"version": CHECKPOINT_VERSION + 1,
                                   "simulator": None}))
    with pytest.raises(ConfigError) as excinfo:
        load_checkpoint(str(path))
    assert "version" in str(excinfo.value)


def test_save_checkpoint_unwritable_path_is_resource_error(tmp_path):
    with pytest.raises(ResourceError):
        save_checkpoint(small_sim(), str(tmp_path / "no_dir" / "ck.pkl"))


def test_supervisor_rejects_bad_arguments():
    with pytest.raises(ConfigError):
        RunSupervisor(checkpoint_every=-1)
    with pytest.raises(ConfigError):
        RunSupervisor(checkpoint_every=10)  # interval without a path
    with pytest.raises(ConfigError):
        RunSupervisor(wall_clock_limit_s=0.0)
