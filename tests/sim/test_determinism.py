"""Determinism regression: same workload/seed => identical metric dumps.

The SimContext refactor centralised every RNG stream; this test pins the
guarantee that re-running a simulation (and running the multi-core
engine) with the same seed is bit-identical, metric for metric.
"""

import pytest

from repro.sim.multicore import MultiCoreSimulator
from repro.sim.simulator import Simulator
from repro.workloads.suite import workload_by_name


@pytest.fixture(scope="module")
def tiny_omnetpp():
    return workload_by_name("omnetpp", max_accesses=8_000, scale=0.05)


def test_simulator_metric_dump_reproducible(tiny_omnetpp):
    first = Simulator(tiny_omnetpp, controller="tmcc", seed=9).run()
    second = Simulator(tiny_omnetpp, controller="tmcc", seed=9).run()
    assert first.metrics, "expected a populated metric dump"
    assert first.metrics == second.metrics
    assert first.as_dict() == second.as_dict()


def test_multicore_metric_dump_reproducible(tiny_omnetpp):
    first = MultiCoreSimulator(tiny_omnetpp, num_cores=2,
                               controller="tmcc", seed=9).run()
    second = MultiCoreSimulator(tiny_omnetpp, num_cores=2,
                                controller="tmcc", seed=9).run()
    assert first.metrics
    assert first.metrics == second.metrics
    # Per-core namespaces exist alongside the shared controller's.
    assert any(key.startswith("core0.tlb.") for key in first.metrics)
    assert any(key.startswith("core1.cache.l1.") for key in first.metrics)
    assert any(key.startswith("controller.") for key in first.metrics)


def test_different_seeds_actually_differ(tiny_omnetpp):
    a = Simulator(tiny_omnetpp, controller="tmcc", seed=1).run()
    b = Simulator(tiny_omnetpp, controller="tmcc", seed=2).run()
    assert a.metrics != b.metrics
