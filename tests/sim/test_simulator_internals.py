"""Unit tests for simulator internals: warmup, placement, classification."""

import pytest

from repro.sim.simulator import Simulator
from repro.workloads.suite import workload_by_name


@pytest.fixture(scope="module")
def workload():
    return workload_by_name("omnetpp", max_accesses=12_000, scale=0.06)


def test_warmup_resets_statistics(workload):
    sim = Simulator(workload, controller="tmcc")
    result = sim.run(warmup_fraction=0.5)
    # Measured accesses exclude the warmup half.
    assert result.accesses == workload.access_count // 2
    # TLB stats only cover the measured region.
    assert sim.tlb.stats.total <= workload.access_count // 2 + 1


def test_zero_warmup_counts_everything(workload):
    sim = Simulator(workload, controller="uncompressed")
    result = sim.run(warmup_fraction=0.0)
    assert result.accesses == workload.access_count


def test_placement_drift_moves_warm_pages_to_ml2(workload):
    none = Simulator(workload, controller="tmcc", placement_drift=0.0,
                     dram_budget_bytes=None, seed=3)
    lots = Simulator(workload, controller="tmcc", placement_drift=0.3,
                     dram_budget_bytes=None, seed=3)
    # With no budget pressure everything fits in ML1 either way; compare
    # hotness ordering instead: drift demotes some warm pages below the
    # untouched ones.
    _, hotness_none = none._data_pages_and_hotness()
    _, hotness_lots = lots._data_pages_and_hotness()
    assert hotness_none.keys() == hotness_lots.keys()
    moved = sum(1 for ppn in hotness_none
                if hotness_none[ppn] != hotness_lots[ppn])
    assert moved > 0


def test_placement_drift_is_seeded(workload):
    a = Simulator(workload, controller="tmcc", seed=9)
    b = Simulator(workload, controller="tmcc", seed=9)
    assert a._data_pages_and_hotness()[1] == b._data_pages_and_hotness()[1]


def test_fig5_classification_counts_walk_misses(workload):
    sim = Simulator(workload, controller="compresso")
    sim.run()
    # Classification never exceeds totals.
    assert 0 <= sim._fig5_after_tlb <= sim._fig5_cte_misses


def test_footprint_and_usage_reporting(workload):
    result = Simulator(workload, controller="uncompressed").run()
    assert result.footprint_bytes == workload.footprint_pages * 4096
    assert result.dram_used_bytes >= result.footprint_bytes


def test_budget_is_respected_end_to_end(workload):
    compresso = Simulator(workload, controller="compresso").run()
    budget = compresso.dram_used_bytes
    tmcc = Simulator(workload, controller="tmcc",
                     dram_budget_bytes=budget).run()
    assert tmcc.dram_used_bytes <= budget * 1.02


def test_trace_outside_footprint_does_not_crash():
    """Addresses past the mapped region are skipped gracefully."""
    workload = workload_by_name("omnetpp", max_accesses=4_000, scale=0.05)
    workload.trace.append(((workload.base_vpn + workload.footprint_pages + 99)
                           << 12, False))
    result = Simulator(workload, controller="tmcc").run()
    assert result.accesses > 0


def test_result_json_roundtrip(tmp_path, workload):
    result = Simulator(workload, controller="compresso").run()
    path = tmp_path / "stats.json"
    result.to_json(path)
    from repro.sim.results import SimResult

    loaded = SimResult.from_json(path)
    assert loaded.workload == result.workload
    assert loaded.accesses == result.accesses
    assert loaded.performance == result.performance
    assert loaded.compression_ratio == result.compression_ratio
    assert loaded.path_fractions == result.path_fractions


def test_result_as_dict_has_derived_metrics(workload):
    result = Simulator(workload, controller="uncompressed").run()
    record = result.as_dict()
    assert record["performance"] == result.performance
    assert "tlb_misses_per_l3_miss" in record
    assert record["controller"] == "uncompressed"
