"""Setup shim for environments without PEP 517 wheel support.

All real metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517`` on machines whose setuptools
cannot build wheels (e.g. offline boxes without the ``wheel`` package).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
