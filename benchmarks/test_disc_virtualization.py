"""Section V-A3 (2D walks): TMCC under virtualization.

The paper notes that each 2D page walk is a sequence of regular host
walks, so embedded CTEs accelerate virtualized workloads the same way.
This bench compares TMCC vs Compresso at iso-capacity with the workload
running inside a VM (nested translation), where walk traffic -- and hence
the translation problem -- is several times larger.
"""

from conftest import print_table

from repro.common.stats import geomean
from repro.sim.simulator import Simulator


def test_virtualized_iso_capacity(benchmark, cache, workload_names):
    names = [n for n in workload_names if n in ("shortestPath", "mcf",
                                                "omnetpp")] or \
        list(workload_names)[:2]

    def compute():
        rows = []
        native_speedups, virtual_speedups = [], []
        for name in names:
            workload = cache.workload(name)
            native = cache.iso(name)
            compresso = Simulator(
                workload, controller="compresso", system=cache.system,
                model=cache.model(name), virtualized=True,
            ).run()
            tmcc = Simulator(
                workload, controller="tmcc", system=cache.system,
                model=cache.model(name), virtualized=True,
                dram_budget_bytes=compresso.dram_used_bytes,
            ).run()
            virtual_speedup = tmcc.performance / compresso.performance
            native_speedups.append(native.speedup)
            virtual_speedups.append(virtual_speedup)
            rows.append((name, f"{native.speedup:.3f}",
                         f"{virtual_speedup:.3f}",
                         f"{tmcc.cte_misses_after_tlb_miss:.2f}"))
        return rows, native_speedups, virtual_speedups

    rows, native, virtual = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows.append(("geomean", f"{geomean(native):.3f}",
                 f"{geomean(virtual):.3f}", ""))
    print_table(
        "Virtualization: TMCC vs Compresso speedup, native vs 2D walks",
        ("workload", "native", "virtualized", "CTE misses after TLB miss"),
        rows,
    )
    # TMCC's advantage survives (and generally grows with) nested walks.
    assert geomean(virtual) > 1.03
