"""Figure 17: TMCC performance normalized to Compresso at iso-capacity.

Paper: +14% average across the large/irregular suite; highest for
shortestPath and canneal (high access rate + high CTE miss rate), lowest
for kcore and triCount (low CTE miss rate).
"""

from conftest import print_table

from repro.common.stats import geomean


def test_fig17_speedup_over_compresso(benchmark, cache, workload_names):
    def compute():
        rows = []
        speedups = {}
        for name in workload_names:
            iso = cache.iso(name)
            speedups[name] = iso.speedup
            rows.append((
                name,
                f"{iso.speedup:.3f}",
                f"{iso.compresso.cte_hit_rate:.1%}",
                f"{iso.tmcc.cte_hit_rate:.1%}",
            ))
        return rows, speedups

    rows, speedups = benchmark.pedantic(compute, rounds=1, iterations=1)
    average = geomean(list(speedups.values()))
    rows.append(("geomean", f"{average:.3f}", "", ""))
    print_table(
        "Figure 17: TMCC perf normalized to Compresso (same DRAM saved)",
        ("workload", "speedup", "Compresso CTE hit", "TMCC CTE hit"),
        rows,
    )
    # Paper: +14% average; every workload at least breaks even.
    assert average > 1.05
    assert all(s > 0.97 for s in speedups.values())
    # Per-workload ordering: kcore gains less than shortestPath/canneal.
    if "kcore" in speedups and "shortestPath" in speedups:
        assert speedups["kcore"] < max(speedups["shortestPath"],
                                       speedups.get("canneal", 0))
