"""Table II: Deflate latency/throughput on 4 KB memory pages.

Paper: our decompressor 277 ns full page / 140 ns half page / 14.8 GB/s;
our compressor 662 ns / 17.2 GB/s; IBM 1100 ns (878 ns half) / 3.7 GB/s
decompress and 1050 ns / 3.9 GB/s compress.  The half-page decompression
(the L3-miss-critical metric) is ~6x faster than IBM's.
"""

import pytest
from conftest import print_table

from repro.common.stats import mean
from repro.common.units import PAGE_SIZE
from repro.compression.deflate import DeflateCodec, DeflateTimingModel, IBMDeflateModel
from repro.workloads.dumps import dump_pages


def test_tab2_deflate_performance(benchmark):
    codec = DeflateCodec()
    timing = DeflateTimingModel()
    ibm = IBMDeflateModel()

    def compute():
        pages = dump_pages("pageRank", num_pages=12) + \
            dump_pages("omnetpp", num_pages=12)
        compressed = [codec.compress(p) for p in pages]
        ours = {
            "decompress_full": mean(timing.decompress_latency_ns(c) for c in compressed),
            "decompress_half": mean(
                timing.decompress_latency_ns(c, PAGE_SIZE // 2) for c in compressed
            ),
            "compress": mean(timing.compress_latency_ns(c) for c in compressed),
            "decompress_tput": mean(
                timing.decompress_throughput_gbps(c) for c in compressed
            ),
            "compress_tput": mean(
                timing.compress_throughput_gbps(c) for c in compressed
            ),
        }
        return ours

    ours = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        ("our decompressor", f"{ours['decompress_full']:.0f} ns",
         f"{ours['decompress_half']:.0f} ns", f"{ours['decompress_tput']:.1f} GB/s"),
        ("our compressor", f"{ours['compress']:.0f} ns", "n/a",
         f"{ours['compress_tput']:.1f} GB/s"),
        ("IBM decompressor", f"{ibm.decompress_latency_ns():.0f} ns",
         f"{ibm.decompress_latency_ns(bytes_needed=PAGE_SIZE // 2):.0f} ns",
         f"{ibm.decompress_throughput_gbps():.1f} GB/s"),
        ("IBM compressor", f"{ibm.compress_latency_ns():.0f} ns", "n/a",
         f"{ibm.compress_throughput_gbps():.1f} GB/s"),
    ]
    print_table("Table II: Deflate performance on 4 KB pages",
                ("module", "latency", "half-page latency", "throughput"), rows)

    # Shape assertions (paper: ~4x full-page, ~6x half-page speedups).
    assert ibm.decompress_latency_ns() / ours["decompress_full"] > 2.5
    half_speedup = ibm.decompress_latency_ns(bytes_needed=PAGE_SIZE // 2) / \
        ours["decompress_half"]
    assert half_speedup > 4.0
    assert ours["decompress_tput"] + ours["compress_tput"] > 25.6  # > 1 channel
    assert ours["decompress_full"] == pytest.approx(277, rel=0.45)
    assert ours["compress"] == pytest.approx(662, rel=0.45)
