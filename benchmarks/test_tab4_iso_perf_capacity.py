"""Table IV: compression ratio normalized to Compresso at iso-performance.

Paper: shrinking TMCC's DRAM budget until its performance drops to
Compresso's level yields 2.2x Compresso's compression ratio on average
(graphs ~2.3x, mcf 2.32x, omnetpp 1.58x, canneal 1.30x).
"""

from conftest import print_table

from repro.common.stats import geomean


def test_tab4_iso_performance_capacity(benchmark, cache, workload_names):
    def compute():
        rows = []
        normalized = []
        for name in workload_names:
            iso = cache.iso_perf(name)
            normalized.append(iso.normalized_ratio)
            rows.append((
                name,
                f"{iso.compresso.dram_used_bytes / 2**20:.0f} MB",
                f"{iso.tmcc.dram_used_bytes / 2**20:.0f} MB",
                f"{iso.compresso_ratio:.2f}",
                f"{iso.tmcc_ratio:.2f}",
                f"{iso.normalized_ratio:.2f}",
            ))
        return rows, normalized

    rows, normalized = benchmark.pedantic(compute, rounds=1, iterations=1)
    average = geomean(normalized)
    rows.append(("average", "", "", "", "", f"{average:.2f}"))
    print_table(
        "Table IV: iso-performance capacity (TMCC vs Compresso)",
        ("workload", "Compresso DRAM", "TMCC DRAM",
         "Compresso ratio", "TMCC ratio", "normalized"),
        rows,
    )
    # Paper: 2.2x average.  Our measured working sets are a far larger
    # fraction of the footprint than the paper's 100 GB workloads allow,
    # which caps how hard TMCC can squeeze before performance drops; the
    # ordering (every workload >= 1x, graphs near the top) still holds.
    assert average > 1.2
    assert all(n >= 1.0 for n in normalized)
