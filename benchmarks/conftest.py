"""Shared infrastructure for the per-figure benchmark harnesses.

Every benchmark regenerates one table or figure of the paper.  Simulation
runs are expensive (seconds each), so a session-scoped :class:`RunCache`
memoizes workloads, compression oracles, and simulation results across
benchmark files -- Figure 17, 18, and 19 all read the same iso-capacity
runs, for example.

Scale knobs (environment variables):

- ``REPRO_BENCH_ACCESSES`` -- trace length per workload (default 60000).
- ``REPRO_BENCH_WORKLOADS`` -- comma-separated subset of the 12 paper
  workloads (default: a 7-workload representative set; set to ``all``
  for the full suite as in the paper).
- ``REPRO_SWEEP_STORE`` -- path to a sweep result store
  (``scripts/reproduce.py`` phase 1 writes one); matching recorded
  runs are read back instead of re-simulated, anything the store
  lacks still runs live.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional, Tuple

import pytest

from repro.core.compmodel import PageCompressionModel
from repro.core.config import SystemConfig
from repro.sim.experiments import (
    IsoCapacityResult,
    IsoPerformanceResult,
    SplitResult,
    iso_capacity_comparison,
    iso_performance_capacity,
    osinspired_split,
    run_workload,
)
from repro.sim.results import SimResult
from repro.workloads.suite import PAPER_WORKLOAD_NAMES, workload_by_name
from repro.workloads.trace import Workload

DEFAULT_WORKLOADS = (
    "pageRank", "shortestPath", "bfs", "kcore", "mcf", "omnetpp", "canneal",
)


def bench_workload_names() -> Tuple[str, ...]:
    raw = os.environ.get("REPRO_BENCH_WORKLOADS", "")
    if raw.strip().lower() == "all":
        return PAPER_WORKLOAD_NAMES
    if raw.strip():
        return tuple(name.strip() for name in raw.split(","))
    return DEFAULT_WORKLOADS


def bench_accesses() -> int:
    return int(os.environ.get("REPRO_BENCH_ACCESSES", "60000"))


def _sweep_store():
    """The ``REPRO_SWEEP_STORE`` result store, when usable."""
    path = os.environ.get("REPRO_SWEEP_STORE", "")
    if not path or not os.path.exists(path):
        return None
    from repro.common.errors import ConfigError
    from repro.sweep.store import SweepStore

    try:
        return SweepStore.open(path)
    except ConfigError:
        return None


class RunCache:
    """Memoizes everything the figure benches share."""

    def __init__(self) -> None:
        self.system = SystemConfig()
        self._store = _sweep_store()
        self._workloads: Dict[str, Workload] = {}
        self._models: Dict[str, PageCompressionModel] = {}
        self._runs: Dict[tuple, SimResult] = {}
        self._iso: Dict[str, IsoCapacityResult] = {}
        self._iso_perf: Dict[str, IsoPerformanceResult] = {}
        self._splits: Dict[tuple, SplitResult] = {}

    def workload(self, name: str) -> Workload:
        if name not in self._workloads:
            self._workloads[name] = workload_by_name(
                name, max_accesses=bench_accesses()
            )
        return self._workloads[name]

    def model(self, name: str) -> PageCompressionModel:
        if name not in self._models:
            workload = self.workload(name)
            self._models[name] = PageCompressionModel(
                workload.content,
                sample_pages=self.system.compression_samples,
                deflate_config=self.system.deflate,
                timing=self.system.deflate_timing,
                ibm=self.system.ibm_timing,
                seed=1,
            )
        return self._models[name]

    def run(self, name: str, controller: str,
            dram_budget_bytes: Optional[int] = None,
            huge_pages: bool = False) -> SimResult:
        key = (name, controller, dram_budget_bytes, huge_pages)
        if key not in self._runs:
            found = None
            if self._store is not None:
                # The sweep phase records the shared runs at the same
                # accesses/seed/scale; budgets match on resolved bytes.
                found = self._store.find_result(
                    name, controller, accesses=bench_accesses(),
                    budget_bytes=dram_budget_bytes, huge_pages=huge_pages,
                )
            self._runs[key] = found or run_workload(
                self.workload(name), controller, self.system,
                dram_budget_bytes=dram_budget_bytes,
                huge_pages=huge_pages, model=self.model(name),
            )
        return self._runs[key]

    def iso(self, name: str) -> IsoCapacityResult:
        if name not in self._iso:
            compresso = self.run(name, "compresso")
            tmcc = self.run(name, "tmcc",
                            dram_budget_bytes=compresso.dram_used_bytes)
            self._iso[name] = IsoCapacityResult(name, compresso, tmcc)
        return self._iso[name]

    def iso_perf(self, name: str) -> IsoPerformanceResult:
        if name not in self._iso_perf:
            self._iso_perf[name] = iso_performance_capacity(
                self.workload(name), self.system, search_steps=6,
            )
        return self._iso_perf[name]

    def split(self, name: str, budget_bytes: int) -> SplitResult:
        key = (name, budget_bytes)
        if key not in self._splits:
            self._splits[key] = osinspired_split(
                self.workload(name), budget_bytes, self.system,
            )
        return self._splits[key]


@pytest.fixture(scope="session")
def cache() -> RunCache:
    return RunCache()


@pytest.fixture(scope="session")
def workload_names():
    return bench_workload_names()


#: All reproduced tables are also mirrored here, so running the harness
#: without ``-s`` (pytest capturing stdout) still records every figure.
TABLES_PATH = Path(__file__).resolve().parent.parent / "bench_tables.txt"


@pytest.fixture(scope="session", autouse=True)
def _fresh_tables_file():
    TABLES_PATH.write_text("")
    yield


def print_table(title: str, header, rows) -> None:
    """Render one reproduced table/figure as aligned text."""
    from repro.reporting import render_table

    text = f"\n=== {title} ===\n{render_table(header, rows)}\n"
    print(text, end="")
    with TABLES_PATH.open("a") as f:
        f.write(text)
