"""Figure 6: fraction of PTBs whose PTEs share identical status bits.

Paper: 99.94% of L1 PTBs and 99.3% of L2 PTBs -- the property that makes
hardware PTB compression (and hence CTE embedding) almost always possible.
"""

from conftest import print_table

from repro.common.rng import DeterministicRNG
from repro.vm.pagetable import (
    FrameAllocator,
    PageTable,
    PageTablePopulator,
    ptb_status_stats,
)


def test_fig06_ptb_status_bit_uniformity(benchmark, cache, workload_names):
    def compute():
        rows = []
        for index, name in enumerate(workload_names):
            workload = cache.workload(name)
            allocator = FrameAllocator(workload.footprint_pages * 4 + 4096,
                                       DeterministicRNG(index))
            table = PageTable(allocator)
            populator = PageTablePopulator(table, allocator,
                                           DeterministicRNG(index + 100))
            populator.populate_region(workload.base_vpn,
                                      workload.footprint_pages)
            populator.finalize_noise()
            stats = ptb_status_stats(table)
            rows.append((name, f"{stats.l1_fraction:.4f}",
                         f"{stats.l2_fraction:.4f}"))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Figure 6: PTBs with identical status bits",
                ("workload", "L1 PTBs", "L2 PTBs"), rows)
    l1 = [float(r[1]) for r in rows]
    l2 = [float(r[2]) for r in rows]
    assert sum(l1) / len(l1) > 0.995   # paper: 99.94%
    assert sum(l2) / len(l2) > 0.97    # paper: 99.3%
