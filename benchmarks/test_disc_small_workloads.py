"""Section VII (Smaller Workloads): small/regular benchmarks.

Paper: for small, regular workloads TMCC neither helps nor hurts
performance (within ~1% of Compresso on average, max +5% for RocksDB,
max -0.1% for freqmine), but still provides 1.7x Compresso's compression
ratio on average at iso-performance (max 3.1x for blackscholes).
"""

from conftest import print_table

from repro.common.stats import geomean
from repro.sim.experiments import (
    iso_capacity_comparison,
    iso_performance_capacity,
)
from repro.workloads.generators import SMALL_KERNELS, small_workload


def test_small_regular_workloads(benchmark):
    def compute():
        rows = []
        speedups, capacity = [], []
        for kernel in SMALL_KERNELS:
            workload = small_workload(kernel, max_accesses=40_000)
            iso = iso_capacity_comparison(workload)
            perf = iso_performance_capacity(workload, search_steps=3)
            speedups.append(iso.speedup)
            capacity.append(perf.normalized_ratio)
            rows.append((kernel, f"{iso.speedup:.3f}",
                         f"{perf.normalized_ratio:.2f}"))
        return rows, speedups, capacity

    rows, speedups, capacity = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows.append(("geomean", f"{geomean(speedups):.3f}",
                 f"{geomean(capacity):.2f}"))
    print_table(
        "Small workloads: iso-capacity speedup and iso-perf capacity",
        ("workload", "speedup vs Compresso", "normalized capacity"),
        rows,
    )
    # No meaningful performance change, substantial capacity advantage.
    assert 0.9 <= geomean(speedups) <= 1.25
    assert geomean(capacity) > 1.2
