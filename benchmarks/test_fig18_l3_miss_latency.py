"""Figure 18: average L3 miss latency under three systems.

Paper: no compression 53 ns; TMCC 56.4 ns (near-parity); Compresso
73.9 ns (~20 ns of serial CTE fetching on every CTE-cache miss).
"""

from conftest import print_table

from repro.common.stats import mean


def test_fig18_l3_miss_latency(benchmark, cache, workload_names):
    def compute():
        latencies = {"uncompressed": [], "compresso": [], "tmcc": []}
        rows = []
        for name in workload_names:
            none = cache.run(name, "uncompressed")
            iso = cache.iso(name)
            latencies["uncompressed"].append(none.avg_l3_miss_latency_ns)
            latencies["compresso"].append(iso.compresso.avg_l3_miss_latency_ns)
            latencies["tmcc"].append(iso.tmcc.avg_l3_miss_latency_ns)
            rows.append((name,
                         f"{none.avg_l3_miss_latency_ns:.1f}",
                         f"{iso.compresso.avg_l3_miss_latency_ns:.1f}",
                         f"{iso.tmcc.avg_l3_miss_latency_ns:.1f}"))
        return rows, latencies

    rows, latencies = benchmark.pedantic(compute, rounds=1, iterations=1)
    averages = {k: mean(v) for k, v in latencies.items()}
    rows.append(("average",
                 f"{averages['uncompressed']:.1f}",
                 f"{averages['compresso']:.1f}",
                 f"{averages['tmcc']:.1f}"))
    print_table("Figure 18: average L3 miss latency (ns)",
                ("workload", "no compression", "Compresso", "TMCC"), rows)

    base = averages["uncompressed"]
    # Paper's regime: ~53 ns baseline; TMCC within a few ns; Compresso
    # ~20 ns worse.
    assert 40 <= base <= 75
    assert averages["tmcc"] - base < 12
    assert averages["compresso"] - base > 10
    assert averages["tmcc"] < averages["compresso"]
