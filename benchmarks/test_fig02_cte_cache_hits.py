"""Figure 2 + Section IV claim: bigger CTE caches vs page-level CTEs.

Paper: quadrupling Compresso's CTE cache only cuts the CTE miss rate from
34% to 29.5%, while switching to page-level translation (8x reach + spatial
locality) eliminates ~40% of CTE misses.
"""

import dataclasses

from conftest import print_table

from repro.common.stats import geomean
from repro.common.units import KIB
from repro.sim.experiments import run_workload


def test_fig02_cache_size_vs_page_level_translation(benchmark, cache, workload_names):
    def compute():
        rows = []
        for name in workload_names:
            base = cache.run(name, "compresso")
            big_system = dataclasses.replace(
                cache.system, compresso_cte_cache_bytes=4 * 128 * KIB
            )
            big = run_workload(cache.workload(name), "compresso", big_system,
                               model=cache.model(name))
            page_level = cache.iso(name).tmcc
            rows.append((
                name,
                f"{1 - base.cte_hit_rate:.2f}",
                f"{1 - big.cte_hit_rate:.2f}",
                f"{1 - page_level.cte_hit_rate:.2f}",
            ))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "Figure 2 / Section IV: CTE miss rate under three designs",
        ("workload", "block 128KB", "block 4x cache", "page-level 64KB"),
        rows,
    )
    base = geomean([max(0.01, float(r[1])) for r in rows])
    big = geomean([max(0.01, float(r[2])) for r in rows])
    page = geomean([max(0.01, float(r[3])) for r in rows])
    # Page-level translation must beat merely quadrupling the cache.
    assert page < big <= base * 1.02
    assert page < 0.6 * base  # paper: ~40% of misses eliminated
