"""Table III fidelity: the paper's 4-core configuration.

The main evaluation machine has 4 cores sharing the L3, the memory
controller, and one DDR4 channel.  This bench re-checks the headline
comparison (TMCC vs Compresso at iso-capacity) with four concurrent
request streams: sharing *increases* pressure on the CTE cache and DRAM
queues, which is the regime TMCC was designed for.
"""

from conftest import print_table

from repro.common.stats import geomean
from repro.sim.multicore import MultiCoreSimulator


def test_four_core_iso_capacity(benchmark, cache, workload_names):
    names = [n for n in workload_names
             if n in ("shortestPath", "mcf", "canneal")] or \
        list(workload_names)[:2]

    def compute():
        rows = []
        speedups = []
        for name in names:
            workload = cache.workload(name)
            compresso = MultiCoreSimulator(
                workload, num_cores=4, controller="compresso",
                system=cache.system, model=cache.model(name),
            ).run()
            tmcc = MultiCoreSimulator(
                workload, num_cores=4, controller="tmcc",
                system=cache.system, model=cache.model(name),
                dram_budget_bytes=compresso.dram_used_bytes,
            ).run()
            speedup = tmcc.performance / compresso.performance
            speedups.append(speedup)
            rows.append((
                name, f"{speedup:.3f}",
                f"{compresso.avg_l3_miss_latency_ns:.0f} ns",
                f"{tmcc.avg_l3_miss_latency_ns:.0f} ns",
                f"{compresso.bandwidth_utilization:.1%}",
            ))
        return rows, speedups

    rows, speedups = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows.append(("geomean", f"{geomean(speedups):.3f}", "", "", ""))
    print_table(
        "4-core iso-capacity: TMCC vs Compresso (Table III machine)",
        ("workload", "speedup", "Compresso lat", "TMCC lat", "bandwidth"),
        rows,
    )
    assert geomean(speedups) > 1.03
