"""Section V-B design-space ablations for the memory-specialized Deflate.

Paper's anchors:
- 1 KB CAM loses only ~1.6% compression ratio vs 4 KB while using 1/4 the
  area; 256-512 B CAMs degrade much more.
- The 16-code reduced tree costs ~1% ratio vs a full tree on non-zero
  pages.
- Dynamic Huffman skipping recovers ~5% geomean ratio.
"""

from conftest import print_table

from repro.common.stats import geomean
from repro.common.units import KIB, PAGE_SIZE
from repro.compression.deflate import AsicAreaModel, DeflateCodec, DeflateConfig
from repro.compression.huffman import ReducedTreeConfig
from repro.compression.lz import LZConfig
from repro.workloads.dumps import dump_pages


def corpus():
    pages = []
    for bench in ("pageRank", "mcf", "omnetpp", "dacapo-h2"):
        pages += dump_pages(bench, num_pages=8)
    return pages


def ratio_of(codec, pages):
    return geomean([PAGE_SIZE / codec.compressed_size(p) for p in pages])


def test_cam_size_ablation(benchmark):
    def compute():
        pages = corpus()
        area = AsicAreaModel()
        rows = []
        ratios = {}
        for cam in (256, 512, 1 * KIB, 4 * KIB):
            codec = DeflateCodec(DeflateConfig(lz=LZConfig(window_size=cam)))
            ratios[cam] = ratio_of(codec, pages)
            rows.append((f"{cam} B", f"{ratios[cam]:.2f}",
                         f"{area.total_area_mm2(cam_size=cam):.3f} mm2"))
        return rows, ratios

    rows, ratios = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Ablation: LZ CAM size vs ratio vs area",
                ("CAM", "geomean ratio", "total area"), rows)
    # The paper's knee: 1 KB within ~2-5% of 4 KB; 256 B visibly worse.
    assert ratios[1 * KIB] > 0.93 * ratios[4 * KIB]
    assert ratios[256] < ratios[1 * KIB]


def test_reduced_tree_size_ablation(benchmark):
    def compute():
        pages = corpus()
        rows = []
        ratios = {}
        for leaves in (4, 8, 16, 32):
            codec = DeflateCodec(DeflateConfig(
                huffman=ReducedTreeConfig(tree_size=leaves, depth_threshold=8)
            ))
            ratios[leaves] = ratio_of(codec, pages)
            rows.append((leaves, f"{ratios[leaves]:.2f}"))
        return rows, ratios

    rows, ratios = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Ablation: reduced-tree leaves vs ratio",
                ("leaves", "geomean ratio"), rows)
    # 16 leaves captures nearly all of the benefit (paper: ~1% loss).
    assert ratios[16] > 0.95 * ratios[32]
    assert ratios[16] >= ratios[4]


def test_dynamic_huffman_skip_ablation(benchmark):
    def compute():
        pages = corpus()
        with_skip = DeflateCodec(DeflateConfig(dynamic_huffman_skip=True))
        without = DeflateCodec(DeflateConfig(dynamic_huffman_skip=False))
        return ratio_of(with_skip, pages), ratio_of(without, pages)

    skip_ratio, no_skip_ratio = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Ablation: dynamic Huffman skip",
                ("config", "geomean ratio"),
                [("skip on", f"{skip_ratio:.2f}"),
                 ("skip off", f"{no_skip_ratio:.2f}")])
    assert skip_ratio >= no_skip_ratio  # never hurts (paper: +5%)


def test_recency_sampling_ablation(benchmark):
    """Sampling 1% of accesses tracks recency almost as well as always
    updating -- the design choice that keeps the list's bandwidth free."""
    from repro.common.rng import DeterministicRNG
    from repro.mc.recency import RecencyList

    def compute():
        results = {}
        for probability in (0.01, 1.0):
            recency = RecencyList(DeterministicRNG(7),
                                  sample_probability=probability)
            rng = DeterministicRNG(8)
            for ppn in range(512):
                recency.push_hot(ppn)
            # Skewed accesses: hot pages are touched constantly.
            for _ in range(200_000):
                recency.on_access(rng.zipf_index(512))
            # Evict half; count how many evictions were genuinely cold
            # (top half of the Zipf ordering = hot).
            cold_hits = 0
            for _ in range(256):
                victim = recency.evict_coldest()
                if victim is not None and victim >= 256:
                    cold_hits += 1
            results[probability] = cold_hits / 256
        return results

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Ablation: recency-list sampling probability",
                ("sampling", "cold-victim accuracy"),
                [(f"{p:.0%}", f"{results[p]:.1%}") for p in sorted(results)])
    # 1% sampling achieves most of full tracking's victim quality.
    assert results[0.01] > 0.6 * results[1.0]
