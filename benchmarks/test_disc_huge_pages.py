"""Section VIII (Huge Pages): TMCC with 2 MiB pages.

Paper: embedded CTEs cannot help (a huge-page PTB would need 4K CTEs),
but page-level translation still beats Compresso: +6% performance at
iso-capacity (vs +14% with base pages), or 1.8x capacity at
iso-performance (vs 2.2x).
"""

from conftest import print_table

from repro.common.stats import geomean
from repro.sim.experiments import run_workload


def test_huge_pages_sensitivity(benchmark, cache, workload_names):
    names = [n for n in workload_names if n in
             ("pageRank", "shortestPath", "mcf", "canneal")] or \
        list(workload_names)[:3]

    def compute():
        rows = []
        base_speedups, huge_speedups = [], []
        for name in names:
            base_iso = cache.iso(name)
            compresso_huge = cache.run(name, "compresso", huge_pages=True)
            tmcc_huge = cache.run(
                name, "tmcc",
                dram_budget_bytes=compresso_huge.dram_used_bytes,
                huge_pages=True,
            )
            huge_speedup = tmcc_huge.performance / compresso_huge.performance
            base_speedups.append(base_iso.speedup)
            huge_speedups.append(huge_speedup)
            rows.append((name, f"{base_iso.speedup:.3f}", f"{huge_speedup:.3f}",
                         f"{tmcc_huge.extra.get('embedded_coverage', 0.0):.2f}"))
        return rows, base_speedups, huge_speedups

    rows, base, huge = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows.append(("geomean", f"{geomean(base):.3f}", f"{geomean(huge):.3f}", ""))
    print_table(
        "Huge pages: TMCC speedup over Compresso (4 KB vs 2 MiB pages)",
        ("workload", "base pages", "huge pages", "embedded coverage"),
        rows,
    )
    # Huge pages mute the ML1 optimization: the advantage shrinks but the
    # page-level-translation benefit keeps TMCC at least at parity.
    assert geomean(huge) >= 0.97
    assert geomean(huge) <= geomean(base) + 0.02
