"""Figure 15: compression ratio of memory dumps under block-level
compression, our ASIC Deflate, and software Deflate (gzip).

Paper: geomean 1.51x (block-level) vs 3.4x (our Deflate, 3.6x with dynamic
Huffman skipping) vs ~3.8x gzip; our Deflate is within ~12% of gzip
(within 7% with skipping).  All-zero pages are excluded.
"""

import zlib

from conftest import print_table

from repro.common.stats import geomean
from repro.compression.block import SelectiveBlockCompressor
from repro.compression.deflate import DeflateCodec, DeflateConfig
from repro.workloads.dumps import DUMP_BENCHMARKS, dump_pages


def test_fig15_compression_ratios(benchmark):
    our_codec = DeflateCodec()
    no_skip_codec = DeflateCodec(DeflateConfig(dynamic_huffman_skip=False))
    block_codec = SelectiveBlockCompressor()

    def compute():
        rows = []
        ratios = {"block": [], "ours": [], "ours_noskip": [], "gzip": []}
        for bench in DUMP_BENCHMARKS:
            pages = dump_pages(bench, num_pages=20)
            original = sum(len(p) for p in pages)
            block = original / sum(block_codec.compressed_page_size(p) for p in pages)
            ours = original / sum(our_codec.compressed_size(p) for p in pages)
            noskip = original / sum(no_skip_codec.compressed_size(p) for p in pages)
            gz = original / sum(len(zlib.compress(p, 6)) for p in pages)
            ratios["block"].append(block)
            ratios["ours"].append(ours)
            ratios["ours_noskip"].append(noskip)
            ratios["gzip"].append(gz)
            rows.append((bench, f"{block:.2f}", f"{ours:.2f}", f"{gz:.2f}"))
        return rows, ratios

    rows, ratios = benchmark.pedantic(compute, rounds=1, iterations=1)
    geo = {k: geomean(v) for k, v in ratios.items()}
    rows.append(("geomean", f"{geo['block']:.2f}", f"{geo['ours']:.2f}",
                 f"{geo['gzip']:.2f}"))
    print_table("Figure 15: compression ratio (zero pages excluded)",
                ("benchmark", "block-level", "our Deflate", "gzip"), rows)

    # Paper's ordering and magnitudes.
    assert geo["block"] < 2.0                      # paper: 1.51x
    assert 2.2 <= geo["ours"] <= 4.2               # paper: 3.4x
    assert geo["ours"] > 1.5 * geo["block"]
    assert geo["ours"] >= 0.8 * geo["gzip"]        # within ~20% of gzip
    # Dynamic Huffman skipping never hurts and helps the geomean.
    assert geo["ours"] >= geo["ours_noskip"]
