"""Figure 22: TMCC-compatible interleaving policies vs sub-page baseline.

Paper (16 cores, 2 MCs x 2 channels, bandwidth-intensive kernels):
interleaving MCs at 4 KB while keeping 256 B channel interleaving performs
within ~1% of the sub-page baseline on average (max -5%, up to +10% from
better row locality); interleaving pages everywhere degrades more
(-5..-11% on sp, D, hpcg).
"""

import dataclasses

from conftest import print_table

from repro.common.stats import geomean
from repro.core.config import SystemConfig
from repro.dram.interleave import (
    PAGE_EVERYWHERE,
    SUBPAGE_EVERYWHERE,
    TMCC_COMPATIBLE,
)
from repro.dram.system import DRAMConfig
from repro.sim.experiments import run_workload
from repro.workloads.generators import BANDWIDTH_KERNELS, bandwidth_workload

POLICIES = (SUBPAGE_EVERYWHERE, TMCC_COMPATIBLE, PAGE_EVERYWHERE)


def _system(policy) -> SystemConfig:
    dram = DRAMConfig(num_mcs=2, channels_per_mc=2, interleave=policy)
    return dataclasses.replace(SystemConfig(), dram=dram)


def test_fig22_interleaving_policies(benchmark):
    def compute():
        rows = []
        normalized = {policy.name: [] for policy in POLICIES}
        for kernel in BANDWIDTH_KERNELS:
            workload = bandwidth_workload(kernel, max_accesses=40_000)
            perfs = {}
            for policy in POLICIES:
                result = run_workload(workload, "uncompressed",
                                      _system(policy))
                perfs[policy.name] = result.performance
            base = perfs[SUBPAGE_EVERYWHERE.name]
            for policy in POLICIES:
                normalized[policy.name].append(perfs[policy.name] / base)
            rows.append((
                kernel,
                f"{perfs[TMCC_COMPATIBLE.name] / base:.3f}",
                f"{perfs[PAGE_EVERYWHERE.name] / base:.3f}",
            ))
        return rows, normalized

    rows, normalized = benchmark.pedantic(compute, rounds=1, iterations=1)
    tmcc_avg = geomean(normalized[TMCC_COMPATIBLE.name])
    page_avg = geomean(normalized[PAGE_EVERYWHERE.name])
    rows.append(("geomean", f"{tmcc_avg:.3f}", f"{page_avg:.3f}"))
    print_table(
        "Figure 22: perf normalized to sub-page interleaving baseline",
        ("kernel", "MC@4KB + ch@256B (TMCC)", "page everywhere"),
        rows,
    )
    # The TMCC-compatible policy stays near the baseline (paper: ~1%);
    # page-everywhere loses channel parallelism and trails it.
    assert 0.85 <= tmcc_avg <= 1.15
    assert page_avg <= tmcc_avg + 0.02
