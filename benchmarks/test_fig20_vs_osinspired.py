"""Figure 20: TMCC vs the bare-bone OS-inspired hardware compression.

Paper: at matched (modest, Table IV column B) DRAM budgets TMCC wins by
12.5%, split ~8.25% from the ML1 optimization (embedded CTEs) and ~4.25%
from the ML2 optimization (fast Deflate).  At aggressive (column C)
budgets the total grows to 15.4% and the ML2 share overtakes ML1's.
"""

from conftest import print_table

from repro.common.stats import geomean


def test_fig20_split_vs_osinspired(benchmark, cache, workload_names):
    def compute():
        rows = []
        totals, ml1_parts, ml2_parts = [], [], []
        for name in workload_names:
            budget = cache.iso(name).budget_bytes  # column-B-style budget
            split = cache.split(name, budget)
            totals.append(split.total_speedup)
            ml1_parts.append(split.ml1_speedup)
            ml2_parts.append(split.ml2_speedup)
            rows.append((
                name,
                f"{split.total_speedup:.3f}",
                f"{split.ml2_speedup:.3f}",
                f"{split.ml1_speedup:.3f}",
            ))
        return rows, totals, ml1_parts, ml2_parts

    rows, totals, ml1_parts, ml2_parts = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    rows.append(("geomean", f"{geomean(totals):.3f}",
                 f"{geomean(ml2_parts):.3f}", f"{geomean(ml1_parts):.3f}"))
    print_table(
        "Figure 20: speedup over bare-bone OS-inspired design",
        ("workload", "TMCC total", "ML2 opt (fast Deflate)",
         "ML1 opt (embedded CTEs)"),
        rows,
    )
    # TMCC beats the bare-bone design; both optimizations contribute.
    assert geomean(totals) > 1.03
    assert geomean(ml1_parts) >= 1.0
    assert geomean(ml2_parts) >= 1.0
