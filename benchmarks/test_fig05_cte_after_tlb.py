"""Figure 5: fraction of CTE misses that follow TLB misses.

Paper: with page-level CTEs (same reach as PTEs), 89% of CTE misses on
average occur on walk-related accesses -- the observation that makes
prefetching CTEs during the page walk worthwhile.
"""

from conftest import print_table


def test_fig05_cte_misses_follow_tlb_misses(benchmark, cache, workload_names):
    def compute():
        rows = []
        for name in workload_names:
            result = cache.iso(name).tmcc
            rows.append((name, f"{result.cte_misses_after_tlb_miss:.2f}"))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Figure 5: CTE misses due to walk-related accesses",
                ("workload", "fraction after TLB miss"), rows)
    # Only workloads with a meaningful number of CTE misses are probative.
    fractions = [float(r[1]) for r in rows if float(r[1]) > 0]
    average = sum(fractions) / len(fractions)
    assert average > 0.6  # paper: 89% on average
