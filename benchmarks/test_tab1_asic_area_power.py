"""Table I: synthesis results for the memory-specialized ASIC Deflate.

Paper (7 nm ASAP, 0.7 V, 2.5 GHz): LZ decompressor 0.022 mm2 / 100 mW,
LZ compressor 0.060 mm2 / 160 mW, Huffman decompressor 0.014 mm2 / 27 mW,
Huffman compressor 0.034 mm2 / 160 mW; complete unit 0.13 mm2 / 447 mW.
"""

import pytest
from conftest import print_table

from repro.common.units import KIB
from repro.compression.deflate import AsicAreaModel


def test_tab1_area_and_power(benchmark):
    def compute():
        model = AsicAreaModel()
        areas = model.module_areas_mm2(cam_size=KIB, tree_size=16)
        powers = model.module_powers_mw(cam_size=KIB, tree_size=16)
        rows = [
            (module, f"{areas[module]:.3f} mm2", f"{powers[module]:.0f} mW")
            for module in areas
        ]
        rows.append(("complete unit",
                     f"{model.total_area_mm2():.2f} mm2",
                     f"{model.total_power_mw():.0f} mW"))
        return rows, model

    (rows, model) = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Table I: ASIC Deflate synthesis (7nm, 1KB CAM, 16-leaf tree)",
                ("module", "area", "power"), rows)
    assert model.total_area_mm2() == pytest.approx(0.13, abs=0.01)
    assert model.total_power_mw() == pytest.approx(447, abs=1)
    # The Section V-B2 design-space anchor: a 4 KB CAM quadruples LZ area.
    assert model.module_areas_mm2(cam_size=4 * KIB)["lz_compressor"] == \
        pytest.approx(0.24, abs=0.01)
