"""Figure 19: distribution of ML1 read accesses under TMCC.

Paper: 76% hit the CTE cache; 22% are parallel speculative accesses with a
correct embedded CTE; the remainder split between incorrect embedded CTEs
and serialized accesses with no embedded CTE.  Consequently TMCC's DRAM
access rate for CTEs is ~24% vs Compresso's 34%.
"""

from conftest import print_table

from repro.common.stats import mean


def test_fig19_ml1_access_distribution(benchmark, cache, workload_names):
    def compute():
        rows = []
        sums = {"cte_hit": [], "parallel_ok": [], "parallel_mismatch": [],
                "serial_no_cte": []}
        for name in workload_names:
            fractions = cache.iso(name).tmcc.path_fractions
            ml1_total = sum(fractions[k] for k in sums) or 1.0
            shares = {k: fractions[k] / ml1_total for k in sums}
            for key in sums:
                sums[key].append(shares[key])
            rows.append((name, *(f"{shares[k]:.1%}" for k in sums)))
        return rows, sums

    rows, sums = benchmark.pedantic(compute, rounds=1, iterations=1)
    averages = {k: mean(v) for k, v in sums.items()}
    rows.append(("average", *(f"{averages[k]:.1%}" for k in sums)))
    print_table(
        "Figure 19: ML1 read access distribution (TMCC)",
        ("workload", "CTE$ hit", "parallel (correct)",
         "incorrect embedded", "serialized no-CTE"),
        rows,
    )
    # Paper's shape: CTE hits dominate (76%), the parallel path serves
    # most CTE misses (22%), mismatches and no-CTE cases are small.
    assert averages["cte_hit"] > 0.5
    assert averages["parallel_ok"] > 0.05
    assert averages["parallel_ok"] > 3 * (averages["parallel_mismatch"]
                                          + averages["serial_no_cte"])


def test_tmcc_fetches_fewer_ctes_from_dram(benchmark, cache, workload_names):
    """Table IV's side claim: TMCC's DRAM access rate for CTEs (its CTE
    miss rate, ~24%) is well below Compresso's (~34%), because page-level
    CTEs cache better and verified CTEs are cached too."""
    def compute():
        rows = []
        tmcc_rates, compresso_rates = [], []
        for name in workload_names:
            iso = cache.iso(name)
            tmcc_rate = 1 - iso.tmcc.cte_hit_rate
            compresso_rate = 1 - iso.compresso.cte_hit_rate
            tmcc_rates.append(tmcc_rate)
            compresso_rates.append(compresso_rate)
            rows.append((name, f"{compresso_rate:.1%}", f"{tmcc_rate:.1%}"))
        return rows, tmcc_rates, compresso_rates

    rows, tmcc_rates, compresso_rates = benchmark.pedantic(
        compute, rounds=1, iterations=1)
    rows.append(("average",
                 f"{mean(compresso_rates):.1%}", f"{mean(tmcc_rates):.1%}"))
    print_table("CTE fetches from DRAM per LLC miss (Table IV discussion)",
                ("workload", "Compresso", "TMCC"), rows)
    assert mean(tmcc_rates) < mean(compresso_rates) * 0.6
