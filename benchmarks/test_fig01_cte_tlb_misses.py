"""Figure 1: TLB misses and CTE misses normalized to LLC misses.

Paper: under block-level translation (Compresso), CTE misses per LLC miss
(34% avg) exceed TLB misses per LLC miss (30% avg), because *every* memory
request -- including the page walker's own PTB fetches -- needs a CTE.
"""

from conftest import print_table


def test_fig01_cte_and_tlb_misses_per_llc_miss(benchmark, cache, workload_names):
    def compute():
        rows = []
        for name in workload_names:
            result = cache.run(name, "compresso")
            rows.append((
                name,
                f"{result.tlb_misses_per_l3_miss:.2f}",
                f"{result.cte_misses_per_l3_miss:.2f}",
            ))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Figure 1: misses per LLC miss (block-level CTEs)",
                ("workload", "TLB misses/LLC miss", "CTE misses/LLC miss"),
                rows)
    tlb = [float(r[1]) for r in rows]
    cte = [float(r[2]) for r in rows]
    # Shape: CTE misses are at least comparable to TLB misses on average
    # (paper: 34% vs 30%), and both are substantial for this suite.
    assert sum(cte) / len(cte) >= 0.8 * (sum(tlb) / len(tlb))
    assert sum(cte) / len(cte) > 0.05
