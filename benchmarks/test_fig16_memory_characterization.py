"""Figure 16: memory-access characterization under no compression.

Paper: read/write bandwidth utilization per workload; canneal and
shortestPath are the most memory-intensive, kcore/triCount the least.
"""

from conftest import print_table


def test_fig16_memory_characterization(benchmark, cache, workload_names):
    def compute():
        rows = []
        data = {}
        for name in workload_names:
            result = cache.run(name, "uncompressed")
            total = max(1, result.dram_reads + result.dram_writes)
            data[name] = result.bandwidth_utilization
            rows.append((
                name,
                f"{result.bandwidth_utilization:.1%}",
                f"{result.dram_reads / total:.1%}",
                f"{result.dram_writes / total:.1%}",
                f"{result.l3_misses / max(1, result.accesses):.2f}",
            ))
        return rows, data

    rows, data = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "Figure 16: memory characterization (no compression)",
        ("workload", "bandwidth util", "reads", "writes", "LLC misses/access"),
        rows,
    )
    # Intensity ordering: canneal tops kcore (paper's extremes).
    if "canneal" in data and "kcore" in data:
        assert data["canneal"] > data["kcore"]
    assert all(0.0 <= u <= 1.0 for u in data.values())
