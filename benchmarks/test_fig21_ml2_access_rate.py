"""Figure 21: ML2 accesses normalized to LLC misses at two DRAM budgets.

Paper: at the modest column-B budget ML2 access rates are small (a few
percent at most); at the aggressive column-C budget they grow, which is
why the ML2 optimization's payoff grows with memory savings.
"""

from conftest import print_table

from repro.common.stats import mean


def test_fig21_ml2_access_rate(benchmark, cache, workload_names):
    def compute():
        rows = []
        modest_rates, aggressive_rates = [], []
        for name in workload_names:
            modest = cache.iso(name).tmcc             # column-B budget
            aggressive = cache.iso_perf(name).tmcc    # column-C budget
            modest_rates.append(modest.ml2_access_rate)
            aggressive_rates.append(aggressive.ml2_access_rate)
            rows.append((name, f"{modest.ml2_access_rate:.2%}",
                         f"{aggressive.ml2_access_rate:.2%}"))
        return rows, modest_rates, aggressive_rates

    rows, modest, aggressive = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows.append(("average", f"{mean(modest):.2%}", f"{mean(aggressive):.2%}"))
    print_table("Figure 21: ML2 accesses per LLC miss",
                ("workload", "col-B budget", "col-C budget"), rows)
    # Aggressive budgets push more accesses to ML2; both stay small
    # (paper's axis tops out at 10%).
    assert mean(aggressive) >= mean(modest)
    assert mean(modest) < 0.10
