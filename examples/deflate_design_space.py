"""Design-space exploration of the memory-specialized ASIC Deflate.

Replays Section V-B's methodology: sweep the HDL's tunable parameters
(LZ CAM size, reduced-tree leaves, dynamic Huffman skip) over a corpus of
synthetic memory dumps and report compression ratio, latency, and silicon
area for each design point -- ending with the paper's chosen configuration
(1 KB CAM, 16-leaf tree, skip on).

Usage:  python examples/deflate_design_space.py
"""

from repro.common.stats import geomean
from repro.common.units import KIB, PAGE_SIZE
from repro.compression.deflate import (
    AsicAreaModel,
    DeflateCodec,
    DeflateConfig,
    DeflateTimingModel,
)
from repro.compression.explore import (
    DesignSpaceExplorer,
    paper_design_point,
    pareto_frontier,
)
from repro.compression.huffman import ReducedTreeConfig
from repro.compression.lz import LZConfig
from repro.workloads.dumps import dump_pages


def build_corpus():
    """A mixed corpus spanning C/C++ and Java-like dump profiles."""
    pages = []
    for benchmark in ("pageRank", "mcf", "omnetpp", "canneal",
                      "dacapo-h2", "renaissance-akka"):
        pages += dump_pages(benchmark, num_pages=8)
    return pages


def evaluate(config: DeflateConfig, pages) -> dict:
    codec = DeflateCodec(config)
    timing = DeflateTimingModel()
    compressed = [codec.compress(p) for p in pages]
    return {
        "ratio": geomean([c.ratio for c in compressed]),
        "half_ns": sum(
            timing.decompress_latency_ns(c, PAGE_SIZE // 2) for c in compressed
        ) / len(compressed),
    }


def main() -> None:
    pages = build_corpus()
    area = AsicAreaModel()

    print("-- LZ CAM size sweep (16-leaf tree, skip on) --")
    print(f"{'CAM':>8s} {'ratio':>7s} {'half-page':>10s} {'area':>10s}")
    for cam in (256, 512, 1 * KIB, 2 * KIB, 4 * KIB):
        result = evaluate(DeflateConfig(lz=LZConfig(window_size=cam)), pages)
        print(f"{cam:>6d}B {result['ratio']:7.2f} "
              f"{result['half_ns']:7.0f} ns "
              f"{area.total_area_mm2(cam_size=cam):7.3f} mm2")

    print("\n-- Reduced-tree size sweep (1 KB CAM, skip on) --")
    print(f"{'leaves':>8s} {'ratio':>7s} {'area':>10s}")
    for leaves in (4, 8, 16, 32, 64):
        config = DeflateConfig(
            huffman=ReducedTreeConfig(tree_size=leaves, depth_threshold=10)
        )
        result = evaluate(config, pages)
        print(f"{leaves:>8d} {result['ratio']:7.2f} "
              f"{area.total_area_mm2(tree_size=leaves):7.3f} mm2")

    print("\n-- Dynamic Huffman skip --")
    for skip in (True, False):
        result = evaluate(DeflateConfig(dynamic_huffman_skip=skip), pages)
        print(f"skip={str(skip):5s} ratio={result['ratio']:.2f}")

    chosen = evaluate(DeflateConfig(), pages)
    print(f"\nChosen design point (1 KB CAM, 16 leaves, skip on): "
          f"{chosen['ratio']:.2f}x at {chosen['half_ns']:.0f} ns half-page, "
          f"{area.total_area_mm2():.2f} mm2 "
          f"(paper: 3.4x, 140 ns, 0.13 mm2)")

    # The same sweep through the library's explorer API, with the Pareto
    # frontier the paper's choice should (and does) sit on.
    print("\n-- Pareto frontier (ratio vs half-page latency vs area) --")
    explorer = DesignSpaceExplorer(pages)
    points = explorer.sweep(cam_sizes=(256, 1 * KIB, 4 * KIB),
                            tree_sizes=(8, 16))
    for point in sorted(pareto_frontier(points), key=lambda p: p.area_mm2):
        marker = "  <- paper's choice" if point is paper_design_point(points) else ""
        print(f"CAM {point.cam_size:>5d}B tree {point.tree_size:>2d}: "
              f"{point.ratio:.2f}x, {point.half_page_latency_ns:.0f} ns, "
              f"{point.area_mm2:.3f} mm2{marker}")


if __name__ == "__main__":
    main()
