"""TMCC under virtualization: 2D page walks end to end.

Runs one irregular workload natively and inside a VM (nested guest/host
translation, Figure 12b) under three memory systems, showing:

- how much extra walk traffic virtualization creates,
- that Compresso's serial CTE fetches hurt *more* when walks multiply,
- that TMCC's embedded CTEs keep helping because every host walk of a 2D
  walk harvests them, exactly like a native walk.

Usage:  python examples/virtualized_workload.py
"""

from repro.sim.simulator import Simulator
from repro.workloads.suite import workload_by_name


def run(workload, controller, virtualized, budget=None):
    return Simulator(workload, controller=controller, virtualized=virtualized,
                     dram_budget_bytes=budget, seed=2).run()


def main() -> None:
    workload = workload_by_name("mcf", max_accesses=40_000, scale=0.35)
    print(f"workload: {workload.description}")
    print(f"footprint: {workload.footprint_pages * 4 // 1024} MiB\n")

    for virtualized in (False, True):
        mode = "virtualized (2D walks)" if virtualized else "native"
        base = run(workload, "uncompressed", virtualized)
        compresso = run(workload, "compresso", virtualized)
        tmcc = run(workload, "tmcc", virtualized,
                   budget=compresso.dram_used_bytes)
        print(f"-- {mode} --")
        print(f"{'system':14s} {'L3 misses':>10s} {'miss lat':>9s} "
              f"{'perf':>9s}")
        for label, result in (("no compress", base),
                              ("Compresso", compresso), ("TMCC", tmcc)):
            print(f"{label:14s} {result.l3_misses:>10d} "
                  f"{result.avg_l3_miss_latency_ns:6.1f} ns "
                  f"{result.performance:6.1f}/us")
        print(f"TMCC vs Compresso: "
              f"{tmcc.performance / compresso.performance:.3f}x\n")


if __name__ == "__main__":
    main()
