"""Quickstart: compress memory pages and compare memory systems.

Runs in under a minute:

1. compresses a realistic 4 KB page with the memory-specialized ASIC
   Deflate and with block-level compression, comparing size and latency;
2. replays a small irregular workload through three memory systems
   (no compression, Compresso, TMCC) and prints the headline comparison.

Usage:  python examples/quickstart.py
"""

from repro.common.units import PAGE_SIZE
from repro.compression.block import SelectiveBlockCompressor
from repro.compression.deflate import DeflateCodec, DeflateTimingModel, IBMDeflateModel
from repro.sim.experiments import iso_capacity_comparison, run_workload
from repro.workloads.content import ContentSynthesizer
from repro.workloads.suite import workload_by_name


def compression_demo() -> None:
    print("=" * 64)
    print("1. Compressing one 4 KB heap-like page")
    print("=" * 64)
    page = ContentSynthesizer("graph", seed=7).page(vpn=42)

    codec = DeflateCodec()
    compressed = codec.compress(page)
    assert codec.decompress(compressed) == page  # bit-exact round trip

    blocks = SelectiveBlockCompressor()
    block_bytes = blocks.compressed_page_size(page)

    timing = DeflateTimingModel()
    ibm = IBMDeflateModel()
    print(f"original size:        {PAGE_SIZE} B")
    print(f"our ASIC Deflate:     {compressed.size_bytes} B "
          f"({compressed.ratio:.2f}x)")
    print(f"block-level best-of:  {block_bytes} B "
          f"({PAGE_SIZE / block_bytes:.2f}x)")
    print(f"decompress (half page, the L3-miss path): "
          f"{timing.decompress_latency_ns(compressed, PAGE_SIZE // 2):.0f} ns "
          f"vs IBM's {ibm.decompress_latency_ns(PAGE_SIZE, PAGE_SIZE // 2):.0f} ns")


def simulation_demo() -> None:
    print()
    print("=" * 64)
    print("2. Replaying an irregular workload through three memory systems")
    print("=" * 64)
    workload = workload_by_name("canneal", max_accesses=40_000, scale=0.4)
    print(f"workload: {workload.description}")
    print(f"footprint: {workload.footprint_pages * 4 // 1024} MiB, "
          f"{workload.access_count} trace records")

    uncompressed = run_workload(workload, "uncompressed")
    iso = iso_capacity_comparison(workload)

    print(f"\n{'system':14s} {'L3 miss lat':>12s} {'perf':>10s} "
          f"{'DRAM used':>10s} {'capacity':>9s}")
    for label, result in (
        ("no compress", uncompressed),
        ("Compresso", iso.compresso),
        ("TMCC", iso.tmcc),
    ):
        print(f"{label:14s} {result.avg_l3_miss_latency_ns:9.1f} ns "
              f"{result.performance:7.1f}/us "
              f"{result.dram_used_bytes / 2**20:7.1f} MB "
              f"{result.compression_ratio:8.2f}x")
    print(f"\nTMCC speedup over Compresso at the same DRAM usage: "
          f"{iso.speedup:.2f}x")


if __name__ == "__main__":
    compression_demo()
    simulation_demo()
