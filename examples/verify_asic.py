"""Functional verification of the ASIC Deflate (the artifact's RTL check).

The paper's artifact runs Verilator RTL simulations and checks that every
non-zero 4 KB page in its memory dumps is bit-identical after compression
and decompression ("failed (pages) should read 0").  This is the same
check against our implementation, over every dump benchmark and every
hardware configuration the HDL exposes.

Usage:  python examples/verify_asic.py [pages-per-benchmark]
"""

import sys

from repro.common.units import KIB
from repro.compression.deflate import DeflateCodec, DeflateConfig
from repro.compression.huffman import ReducedTreeConfig
from repro.compression.lz import LZConfig
from repro.workloads.dumps import DUMP_BENCHMARKS, dump_pages

CONFIGS = {
    "default (1KB CAM, 16 leaves, skip)": DeflateConfig(),
    "256B CAM": DeflateConfig(lz=LZConfig(window_size=256)),
    "4KB CAM": DeflateConfig(lz=LZConfig(window_size=4 * KIB)),
    "8-leaf tree": DeflateConfig(huffman=ReducedTreeConfig(tree_size=8)),
    "no skip": DeflateConfig(dynamic_huffman_skip=False),
    "1.1 Pass": DeflateConfig(
        huffman=ReducedTreeConfig(frequency_sample_fraction=0.125)),
}


def main() -> int:
    pages_per_benchmark = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    total = 0
    failed = 0
    for config_name, config in CONFIGS.items():
        codec = DeflateCodec(config)
        config_failed = 0
        for benchmark in DUMP_BENCHMARKS:
            for page in dump_pages(benchmark, num_pages=pages_per_benchmark):
                total += 1
                if codec.decompress(codec.compress(page)) != page:
                    config_failed += 1
        failed += config_failed
        print(f"{config_name:36s} failed (pages): {config_failed}")
    print(f"\nverified {total} pages across {len(CONFIGS)} configurations; "
          f"failed (pages): {failed}")
    print("BUILD SUCCESSFUL" if failed == 0 else "BUILD FAILED")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
