"""Anatomy of a TMCC page walk: how CTEs ride inside compressed PTBs.

A step-by-step, printf-annotated walk through the paper's core mechanism
(Section V-A) on real data structures:

1. build a page table and map a small region;
2. compress one leaf PTB in hardware and embed CTEs into the freed space;
3. perform a page walk, harvest the embedded CTEs into the CTE Buffer;
4. serve an LLC miss through the *parallel* speculative path;
5. migrate the page behind the PTB's back and watch the verify catch the
   stale embedded CTE, re-access, and lazily repair it.

Usage:  python examples/page_walk_anatomy.py
"""

from repro.common.rng import DeterministicRNG
from repro.core.compmodel import PageCompressionModel
from repro.core.config import SystemConfig
from repro.core.tmcc import TMCCController
from repro.dram.system import DRAMSystem
from repro.vm.pagetable import FrameAllocator, PageTable, PageTablePopulator
from repro.vm.ptbcodec import PTBCodec
from repro.workloads.content import ContentSynthesizer


def main() -> None:
    # -- 1. a page table with one mapped region ------------------------
    allocator = FrameAllocator(1 << 20, DeterministicRNG(1))
    table = PageTable(allocator)
    populator = PageTablePopulator(table, allocator, DeterministicRNG(2))
    base_vpn = 0x4_0000
    ppns = populator.populate_region(base_vpn, 64)
    print(f"mapped 64 pages at vpn {base_vpn:#x}; first ppn = {ppns[0]:#x}")

    # -- 2. hardware-compress the leaf PTB ------------------------------
    path = table.walk_path(base_vpn)
    leaf_level, leaf_ptb_address, _ = path[-1]
    ptes = table.ptb_at(leaf_ptb_address)
    codec = PTBCodec()
    compressed = codec.compress(ptes)
    print(f"\nleaf PTB @ {leaf_ptb_address:#x}: compressible = "
          f"{compressed is not None}")
    print(f"this machine (1 TB/MC, 4x expansion): truncated CTEs are "
          f"{codec.cte_bits} bits; {codec.embeddable_ctes} fit per PTB")

    # -- 3. a TMCC controller with pages placed across ML1/ML2 ---------
    system = SystemConfig()
    controller = TMCCController(system, DRAMSystem())
    model = PageCompressionModel(ContentSynthesizer("graph", 3).page,
                                 sample_pages=8, seed=3)
    hotness = {ppn: rank for rank, ppn in enumerate(ppns)}
    controller.initialize(ppns, hotness, [page.ppn for page in
                                          table.table_pages()], model)
    controller.note_ptb_fetch(leaf_level, leaf_ptb_address, ptes,
                              huge_leaf=False)
    print(f"\nwalk fetched the PTB; CTE Buffer now holds "
          f"{len(controller._cte_buffer)} entries")

    # -- 4. LLC miss via the parallel path ------------------------------
    controller.cte_cache.flush()  # force the CTE-cache-miss case
    target = ppns[0]
    result = controller.serve_l3_miss(target, block_index=0, now_ns=0.0)
    print(f"LLC miss on ppn {target:#x}: path = {result.path!r}, "
          f"latency = {result.latency_ns:.0f} ns "
          f"(data and verifying CTE fetched in parallel)")

    # -- 5. stale embedded CTE: verify, re-access, repair ---------------
    controller._cte[target].dram_page += 7  # the page migrated elsewhere
    controller.cte_cache.flush()
    result = controller.serve_l3_miss(target, block_index=0, now_ns=1000.0)
    print(f"\nafter migrating the page: path = {result.path!r}, "
          f"latency = {result.latency_ns:.0f} ns (speculation wasted, "
          f"re-accessed with the correct CTE)")
    controller.cte_cache.flush()
    result = controller.serve_l3_miss(target, block_index=0, now_ns=2000.0)
    print(f"after the lazy repair:     path = {result.path!r}, "
          f"latency = {result.latency_ns:.0f} ns (back to the fast path)")


if __name__ == "__main__":
    main()
