"""Capacity planner: the performance/capacity trade-off under TMCC.

Sweeps TMCC's DRAM budget from Compresso's usage down toward the fully
compressed floor for one workload, printing the performance retained and
the effective capacity gained at each point -- the trade Table IV and
Figure 21 characterize.  The last line finds the iso-performance point
automatically.

Usage:  python examples/capacity_planner.py [workload]
        (default workload: mcf; any of the 12 paper workloads works)
"""

import sys

from repro.sim.experiments import (
    iso_performance_capacity,
    run_workload,
)
from repro.workloads.suite import PAPER_WORKLOAD_NAMES, workload_by_name


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    if name not in PAPER_WORKLOAD_NAMES:
        raise SystemExit(f"pick one of {PAPER_WORKLOAD_NAMES}")
    workload = workload_by_name(name, max_accesses=50_000, scale=0.5)
    print(f"workload: {name} "
          f"({workload.footprint_pages * 4 // 1024} MiB footprint)")

    compresso = run_workload(workload, "compresso")
    print(f"Compresso: {compresso.dram_used_bytes / 2**20:.1f} MB used, "
          f"ratio {compresso.compression_ratio:.2f}x, "
          f"perf {compresso.performance:.1f}/us\n")

    print(f"{'TMCC budget':>12s} {'perf vs Compresso':>18s} "
          f"{'capacity':>9s} {'ML2 rate':>9s}")
    for fraction in (1.0, 0.85, 0.7, 0.55, 0.4):
        budget = int(compresso.dram_used_bytes * fraction)
        try:
            result = run_workload(workload, "tmcc", dram_budget_bytes=budget)
        except ValueError:
            print(f"{budget / 2**20:9.1f} MB  (below the compressible floor)")
            continue
        print(f"{budget / 2**20:9.1f} MB "
              f"{result.performance / compresso.performance:17.2%} "
              f"{result.compression_ratio:8.2f}x "
              f"{result.ml2_access_rate:8.2%}")

    iso = iso_performance_capacity(workload, search_steps=4)
    print(f"\niso-performance point: {iso.tmcc.dram_used_bytes / 2**20:.1f} MB "
          f"-> {iso.normalized_ratio:.2f}x Compresso's compression ratio "
          f"at >= 99% of its performance (paper average: 2.2x)")


if __name__ == "__main__":
    main()
