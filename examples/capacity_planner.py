"""Capacity planner: the performance/capacity trade-off under TMCC.

Sweeps TMCC's DRAM budget from Compresso's usage down toward the fully
compressed floor for one workload, printing the performance retained and
the effective capacity gained at each point -- the trade Table IV and
Figure 21 characterize.  The last line finds the iso-performance point
automatically.

The ladder is declared as a :class:`~repro.sweep.spec.SweepSpec` and
executed into a SQLite result store, and the data points are then read
*back from the store* -- the same rows ``repro sweep show/export`` (or
any later analysis script) would see.  Re-running the planner resumes:
already-recorded budgets are skipped, only missing ones simulate.

Usage:  python examples/capacity_planner.py [workload] [store.db]
        (default workload: mcf; any of the 12 paper workloads works;
        default store: capacity_planner.db in the working directory)
"""

import sys

from repro.sim.experiments import iso_performance_capacity
from repro.sweep.engine import run_sweep
from repro.sweep.spec import BudgetSpec, SweepSpec
from repro.workloads.suite import PAPER_WORKLOAD_NAMES, cached_workload

#: Budget ladder, as fractions of Compresso's measured DRAM usage.
FRACTIONS = (1.0, 0.85, 0.7, 0.55, 0.4)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    store_path = sys.argv[2] if len(sys.argv) > 2 else "capacity_planner.db"
    if name not in PAPER_WORKLOAD_NAMES:
        raise SystemExit(f"pick one of {PAPER_WORKLOAD_NAMES}")
    workload = cached_workload(name, max_accesses=50_000, scale=0.5)
    print(f"workload: {name} "
          f"({workload.footprint_pages * 4 // 1024} MiB footprint)")

    # Declare the ladder: Compresso once (the iso reference), TMCC at
    # each fraction of its measured usage.  run_sweep records every
    # point in the store and skips rows recorded by an earlier run.
    spec = SweepSpec.build(
        name=f"capacity-{name}",
        workloads=(name,),
        controllers=(
            "compresso",
            {"name": "tmcc",
             "budgets": [BudgetSpec("fraction", f) for f in FRACTIONS]},
        ),
        accesses=50_000,
        scale=0.5,
    )
    run = run_sweep(spec, store=store_path)
    store = run.store

    # Read the data points back from the store -- not from the run.
    jobs = {job["budget"]: job for job in store.jobs(run.sweep_id)
            if job["controller"] == "tmcc"}
    compresso_row = next(job for job in store.jobs(run.sweep_id)
                         if job["controller"] == "compresso")
    compresso = store.result_for(compresso_row["job_id"])
    print(f"Compresso: {compresso.dram_used_bytes / 2**20:.1f} MB used, "
          f"ratio {compresso.compression_ratio:.2f}x, "
          f"perf {compresso.performance:.1f}/us\n")

    print(f"{'TMCC budget':>12s} {'perf vs Compresso':>18s} "
          f"{'capacity':>9s} {'ML2 rate':>9s}")
    for fraction in FRACTIONS:
        job = jobs[BudgetSpec("fraction", fraction).label()]
        budget = job["budget_bytes"]
        result = store.result_for(job["job_id"])
        if result is None:  # recorded as failed: under the floor
            print(f"{budget / 2**20:9.1f} MB  (below the compressible floor)")
            continue
        print(f"{budget / 2**20:9.1f} MB "
              f"{result.performance / compresso.performance:17.2%} "
              f"{result.compression_ratio:8.2f}x "
              f"{result.ml2_access_rate:8.2%}")

    iso = iso_performance_capacity(workload, search_steps=4)
    print(f"\niso-performance point: {iso.tmcc.dram_used_bytes / 2**20:.1f} MB "
          f"-> {iso.normalized_ratio:.2f}x Compresso's compression ratio "
          f"at >= 99% of its performance (paper average: 2.2x)")
    print(f"data points recorded in {store_path} "
          f"(inspect with: repro sweep show {run.sweep_id} "
          f"--store {store_path})")


if __name__ == "__main__":
    main()
